// Parallel push tests (Algorithms 3 and 4 and the Table 3 variants):
//  * golden traces against the paper's Figures 2 and 3 — exact arithmetic;
//  * eps-approximation vs the power-iteration oracle for every variant,
//    thread count, and graph family (TEST_P sweeps);
//  * the eager-propagation op-count reduction the paper's Figure 3
//    narrates (parallel loss mitigation);
//  * adversarial batches and edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "core/dynamic_ppr.h"
#include "core/invariant.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/parallel.h"
#include "util/random.h"

namespace dppr {
namespace {

constexpr double kPaperAlpha = 0.5;
constexpr double kPaperEps = 0.1;

PprOptions PaperOptions(PushVariant variant) {
  PprOptions options;
  options.alpha = kPaperAlpha;
  options.eps = kPaperEps;
  options.variant = variant;
  return options;
}

// Figure 3 a(1)-a(4): Algorithm 3 (Vanilla) from scratch pushes
// {v1, v2, v3, v3, v4} — 5 operations — and converges to the Figure 1(a)
// state. Every add commutes and the crossing-enqueues are unique, so this
// trace is deterministic for any thread count.
TEST(ParallelPushGoldenTest, Figure3VanillaScratchTrace) {
  DynamicGraph g = PaperExampleGraph();
  DynamicPpr ppr(&g, 0, PaperOptions(PushVariant::kVanilla));
  ppr.Initialize();
  EXPECT_EQ(ppr.last_stats().counters.push_ops, 5);  // one parallel loss
  EXPECT_EQ(ppr.last_stats().pos_iterations, 3);     // a(1) a(2) a(3)
  EXPECT_NEAR(ppr.Estimates()[0], 0.5, 1e-12);
  EXPECT_NEAR(ppr.Estimates()[1], 0.25, 1e-12);
  EXPECT_NEAR(ppr.Estimates()[2], 0.1875, 1e-12);
  EXPECT_NEAR(ppr.Estimates()[3], 0.0625, 1e-12);
  EXPECT_NEAR(ppr.Residuals()[0], 0.0625, 1e-12);
  EXPECT_NEAR(ppr.Residuals()[1], 0.0, 1e-12);
  EXPECT_NEAR(ppr.Residuals()[2], 0.0, 1e-12);
  EXPECT_NEAR(ppr.Residuals()[3], 0.0625, 1e-12);
}

// Same computation with Algorithm 4: eager propagation lets v3 absorb
// v2's contribution before pushing (the b(3) moment of Figure 3), saving
// the duplicated v3 push: 4 operations, sequential-quality result. With
// one thread the frontier is processed in order, which realizes the
// eager read deterministically.
TEST(ParallelPushGoldenTest, Figure3OptEagerSavesOnePush) {
  ScopedNumThreads one(1);
  DynamicGraph g = PaperExampleGraph();
  DynamicPpr ppr(&g, 0, PaperOptions(PushVariant::kOpt));
  ppr.Initialize();
  EXPECT_EQ(ppr.last_stats().counters.push_ops, 4);  // loss mitigated
  EXPECT_NEAR(ppr.Estimates()[0], 0.5, 1e-12);
  EXPECT_NEAR(ppr.Estimates()[1], 0.25, 1e-12);
  EXPECT_NEAR(ppr.Estimates()[2], 0.1875, 1e-12);
  EXPECT_NEAR(ppr.Estimates()[3], 0.09375, 1e-12);  // Figure 3 b(5)
  EXPECT_NEAR(ppr.Residuals()[0], 0.09375, 1e-12);
}

// Figure 2: batch {e1, e2} on the converged Figure 2(a) state, Algorithm 3.
// One ParallelPush iteration over frontier {v1, v4} converges to the exact
// Figure 2(d) numbers.
TEST(ParallelPushGoldenTest, Figure2BatchUpdateVanilla) {
  DynamicGraph g2 = PaperExampleGraph();
  DynamicPpr ppr2(&g2, 0, PaperOptions(PushVariant::kVanilla));
  // Vanilla-from-scratch reaches Figure 1(a)/2(a) exactly (golden test
  // above), which is the state Figure 2 starts from.
  ppr2.Initialize();
  ASSERT_NEAR(ppr2.Estimates()[3], 0.0625, 1e-12);

  UpdateBatch batch = {PaperExampleInsertE1(), PaperExampleInsertE2()};
  ppr2.ApplyBatch(batch);
  const auto& p = ppr2.Estimates();
  const auto& r = ppr2.Residuals();
  EXPECT_NEAR(p[0], 0.578125, 1e-12);    // Figure 2(d): 0.5781
  EXPECT_NEAR(p[1], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.1875, 1e-12);
  EXPECT_NEAR(p[3], 0.171875, 1e-12);    // Figure 2(d): 0.1718
  EXPECT_NEAR(r[0], 0.0546875, 1e-12);   // Figure 2(d): 0.0546
  EXPECT_NEAR(r[1], 0.078125, 1e-12);    // Figure 2(d): 0.0781
  EXPECT_NEAR(r[2], 0.0390625, 1e-12);   // Figure 2(d): 0.039
  EXPECT_NEAR(r[3], 0.0390625, 1e-12);   // Figure 2(d): 0.039
  EXPECT_EQ(ppr2.last_stats().pos_iterations, 1);  // converges in one round
  EXPECT_EQ(ppr2.last_stats().counters.push_ops, 2);  // v1 and v4
}

// ------------------------------------------------------- variant sweeps

using VariantParam =
    std::tuple<PushVariant, int /*threads*/, int /*graph kind*/>;

class ParallelVariantTest : public testing::TestWithParam<VariantParam> {
 protected:
  static DynamicGraph MakeGraph(int kind) {
    switch (kind) {
      case 0:
        return DynamicGraph::FromEdges(GenerateErdosRenyi(512, 4096, 77),
                                       512);
      case 1:
        return DynamicGraph::FromEdges(
            GenerateRmat({.scale = 9, .avg_degree = 10, .seed = 78}),
            1 << 9);
      default:
        return StarGraph(512);  // extreme hub skew
    }
  }
};

TEST_P(ParallelVariantTest, ScratchMatchesOracle) {
  const auto [variant, threads, kind] = GetParam();
  ScopedNumThreads guard(threads);
  DynamicGraph g = MakeGraph(kind);
  PprOptions options;
  options.alpha = 0.15;
  options.eps = 1e-6;
  options.variant = variant;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  EXPECT_LE(ppr.state().MaxAbsResidual(), options.eps);
  PowerIterationOptions opt;
  opt.alpha = 0.15;
  auto truth = PowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001);
  // The invariant holds at every vertex afterwards.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_NEAR(
        InvariantDefect(g, 0, v, options.alpha, ppr.state().p, ppr.state().r),
        0.0, 1e-9);
  }
}

TEST_P(ParallelVariantTest, SlidingWindowMaintenanceMatchesOracle) {
  const auto [variant, threads, kind] = GetParam();
  ScopedNumThreads guard(threads);
  DynamicGraph base = MakeGraph(kind);
  EdgeStream stream = EdgeStream::RandomPermutation(base.ToEdgeList(), 99);
  SlidingWindow window(&stream, 0.4);
  DynamicGraph g =
      DynamicGraph::FromEdges(window.InitialEdges(), base.NumVertices());
  PprOptions options;
  options.alpha = 0.2;
  options.eps = 1e-5;
  options.variant = variant;
  DynamicPpr ppr(&g, 1, options);
  ppr.Initialize();
  PowerIterationOptions opt;
  opt.alpha = 0.2;
  const EdgeCount k = std::max<EdgeCount>(window.WindowSize() / 20, 1);
  for (int slide = 0; slide < 4 && window.CanSlide(k); ++slide) {
    ppr.ApplyBatch(window.NextBatch(k));
    ASSERT_LE(ppr.state().MaxAbsResidual(), options.eps) << "slide " << slide;
    auto truth = PowerIterationPpr(g, 1, opt);
    ASSERT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001)
        << "slide " << slide;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsThreadsGraphs, ParallelVariantTest,
    testing::Combine(testing::Values(PushVariant::kVanilla,
                                     PushVariant::kEager,
                                     PushVariant::kDupDetect,
                                     PushVariant::kOpt,
                                     PushVariant::kSortAggregate,
                                     PushVariant::kAdaptive),
                     testing::Values(1, 2, 4),
                     testing::Values(0, 1, 2)),
    [](const testing::TestParamInfo<VariantParam>& param_info) {
      return std::string(PushVariantName(std::get<0>(param_info.param))) +
             "_t" + std::to_string(std::get<1>(param_info.param)) + "_g" +
             std::to_string(std::get<2>(param_info.param));
    });

// --------------------------------------------------------- edge cases

TEST(ParallelPushEdgeCaseTest, EmptyBatchIsNoOp) {
  DynamicGraph g = CycleGraph(8);
  PprOptions options;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  auto before = ppr.Estimates();
  ppr.ApplyBatch({});
  EXPECT_EQ(ppr.Estimates(), before);
  EXPECT_EQ(ppr.last_stats().counters.push_ops, 0);
}

TEST(ParallelPushEdgeCaseTest, InsertThenDeleteSameEdgeInOneBatch) {
  DynamicGraph g = CycleGraph(16);
  PprOptions options;
  options.eps = 1e-7;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  UpdateBatch batch = {EdgeUpdate::Insert(3, 9), EdgeUpdate::Delete(3, 9)};
  ppr.ApplyBatch(batch);
  EXPECT_LE(ppr.state().MaxAbsResidual(), options.eps);
  PowerIterationOptions opt;
  auto truth = PowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001);
}

TEST(ParallelPushEdgeCaseTest, HubConcentratedBatch) {
  // All updates hit one hub: the worst case for frontier duplication.
  DynamicGraph g = StarGraph(256);
  PprOptions options;
  options.eps = 1e-6;
  options.variant = PushVariant::kOpt;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  UpdateBatch batch;
  for (VertexId v = 1; v <= 64; ++v) {
    batch.push_back(EdgeUpdate::Delete(0, v));
  }
  for (VertexId v = 1; v <= 64; ++v) {
    batch.push_back(EdgeUpdate::Insert(0, v));
  }
  ppr.ApplyBatch(batch);
  EXPECT_LE(ppr.state().MaxAbsResidual(), options.eps);
  PowerIterationOptions opt;
  auto truth = PowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001);
}

TEST(ParallelPushEdgeCaseTest, SelfLoopGraph) {
  DynamicGraph g = CycleGraph(8);
  g.AddEdge(3, 3);  // self-loop
  PprOptions options;
  options.eps = 1e-7;
  options.variant = PushVariant::kOpt;
  DynamicPpr ppr(&g, 3, options);
  ppr.Initialize();
  PowerIterationOptions opt;
  auto truth = PowerIterationPpr(g, 3, opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001);
}

TEST(ParallelPushEdgeCaseTest, FullScanInitEquivalent) {
  auto edges = GenerateErdosRenyi(256, 2048, 5);
  DynamicGraph g1 = DynamicGraph::FromEdges(edges, 256);
  DynamicGraph g2 = DynamicGraph::FromEdges(edges, 256);
  PprOptions touched_init;
  touched_init.eps = 1e-6;
  PprOptions full_scan = touched_init;
  full_scan.full_scan_frontier_init = true;
  DynamicPpr a(&g1, 0, touched_init);
  DynamicPpr b(&g2, 0, full_scan);
  a.Initialize();
  b.Initialize();
  UpdateBatch batch;
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    batch.push_back(
        EdgeUpdate::Insert(static_cast<VertexId>(rng.NextBounded(256)),
                           static_cast<VertexId>(rng.NextBounded(256))));
  }
  a.ApplyBatch(batch);
  b.ApplyBatch(batch);
  EXPECT_LE(MaxAbsError(a.Estimates(), b.Estimates()), 2e-6);
  EXPECT_LE(b.state().MaxAbsResidual(), 1e-6);
}

TEST(ParallelPushEdgeCaseTest, GrowingVertexSetMidStream) {
  DynamicGraph g = CycleGraph(8);
  PprOptions options;
  options.eps = 1e-6;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  UpdateBatch batch = {EdgeUpdate::Insert(7, 20),
                       EdgeUpdate::Insert(20, 0),
                       EdgeUpdate::Insert(21, 20)};
  ppr.ApplyBatch(batch);
  ASSERT_EQ(g.NumVertices(), 22);
  ASSERT_EQ(static_cast<VertexId>(ppr.Estimates().size()), 22);
  PowerIterationOptions opt;
  auto truth = PowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001);
}

// ------------------------------------------------------- op-count claims

TEST(ParallelLossTest, OptNeverUsesMoreOpsThanVanillaHere) {
  // Lemma 4 / Figure 3: parallel loss makes Vanilla do extra work; eager
  // propagation recovers it. Compare op counts on a batch workload.
  auto edges = GenerateRmat({.scale = 10, .avg_degree = 8, .seed = 41});
  EdgeStream stream = EdgeStream::RandomPermutation(edges, 12);
  auto run = [&stream](PushVariant variant) {
    SlidingWindow window(&stream, 0.5);
    DynamicGraph g = DynamicGraph::FromEdges(window.InitialEdges(), 1 << 10);
    PprOptions options;
    options.alpha = 0.15;
    options.eps = 1e-7;
    options.variant = variant;
    DynamicPpr ppr(&g, 0, options);
    ppr.Initialize();
    int64_t ops = 0;
    for (int slide = 0; slide < 3; ++slide) {
      ppr.ApplyBatch(window.NextBatch(window.WindowSize() / 10));
      ops += ppr.last_stats().counters.push_ops;
    }
    return ops;
  };
  const int64_t vanilla_ops = run(PushVariant::kVanilla);
  const int64_t opt_ops = run(PushVariant::kOpt);
  // Small slack: thread interleaving adds noise, but the trend must hold.
  EXPECT_LE(opt_ops, vanilla_ops * 105 / 100 + 16);
  EXPECT_GT(opt_ops, 0);
}

TEST(ParallelLossTest, DedupRejectsOnlyInUniqueEnqueueVariants) {
  auto edges = GenerateRmat({.scale = 9, .avg_degree = 12, .seed = 55});
  auto run = [&edges](PushVariant variant) {
    DynamicGraph g = DynamicGraph::FromEdges(edges, 1 << 9);
    PprOptions options;
    options.eps = 1e-8;
    options.variant = variant;
    DynamicPpr ppr(&g, 0, options);
    ppr.Initialize();
    return ppr.last_stats().counters;
  };
  // Local-duplicate-detection variants never touch the shared flags.
  EXPECT_EQ(run(PushVariant::kOpt).dedup_rejects, 0);
  EXPECT_EQ(run(PushVariant::kDupDetect).dedup_rejects, 0);
  // UniqueEnqueue variants reject duplicates under any real workload.
  EXPECT_GT(run(PushVariant::kVanilla).dedup_rejects, 0);
}

// ------------------------------------------------------ options plumbing

TEST(PprOptionsTest, VariantNamesRoundTrip) {
  for (PushVariant variant :
       {PushVariant::kSequential, PushVariant::kVanilla, PushVariant::kEager,
        PushVariant::kDupDetect, PushVariant::kOpt,
        PushVariant::kSortAggregate, PushVariant::kAdaptive}) {
    PushVariant parsed;
    ASSERT_TRUE(ParsePushVariant(PushVariantName(variant), &parsed).ok());
    EXPECT_EQ(parsed, variant);
  }
  PushVariant parsed;
  EXPECT_TRUE(ParsePushVariant("warp-speed", &parsed).IsInvalidArgument());
}

TEST(PprOptionsTest, ValidateRejectsBadRanges) {
  PprOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.alpha = 0.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.alpha = 1.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.alpha = 0.15;
  options.eps = 0.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(PprOptionsTest, HugeRoundThresholdDisablesAtomics) {
  // With an effectively infinite sequential threshold every round runs
  // on one thread with plain arithmetic: the atomic counter stays zero
  // and results are still correct.
  ScopedNumThreads two(2);
  DynamicGraph g = DynamicGraph::FromEdges(
      GenerateErdosRenyi(256, 2048, 31), 256);
  PprOptions options;
  options.eps = 1e-6;
  options.parallel_round_min_work = int64_t{1} << 40;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  EXPECT_EQ(ppr.last_stats().counters.atomic_adds, 0);
  PowerIterationOptions opt;
  auto truth = PowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001);
}

TEST(PprOptionsTest, ForceParallelAlwaysUsesAtomics) {
  ScopedNumThreads two(2);
  DynamicGraph g = DynamicGraph::FromEdges(
      GenerateErdosRenyi(256, 2048, 31), 256);
  PprOptions options;
  options.eps = 1e-6;
  // Pin the sparse push kernel: the property under test (one atomic add
  // per edge traversal in a forced-parallel round) is the sparse path's
  // contract; kAdaptive's dense sweep writes without per-edge atomics.
  options.variant = PushVariant::kOpt;
  options.force_parallel_rounds = true;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  EXPECT_GT(ppr.last_stats().counters.atomic_adds, 0);
  EXPECT_EQ(ppr.last_stats().counters.atomic_adds,
            ppr.last_stats().counters.edge_traversals);
}

// ------------------------------------------- multi-source (see index_test)

TEST(MultiSourceTest, EachSourceMatchesIndependentMaintenance) {
  auto edges = GenerateErdosRenyi(128, 1024, 3);
  EdgeStream stream = EdgeStream::RandomPermutation(edges, 4);
  SlidingWindow window(&stream, 0.5);
  PprOptions options;
  options.eps = 1e-6;

  DynamicGraph shared =
      DynamicGraph::FromEdges(window.InitialEdges(), 128);
  PprIndex multi(&shared, {0, 1, 2}, options);
  multi.Initialize();

  auto batch = window.NextBatch(40);
  multi.ApplyBatch(batch);

  PowerIterationOptions opt;
  for (size_t i = 0; i < multi.NumSources(); ++i) {
    auto truth = PowerIterationPpr(shared, multi.SourceVertex(i), opt);
    EXPECT_LE(MaxAbsError(multi.Source(i).Estimates(), truth),
              options.eps * 1.0001)
        << "source " << i;
  }
}

}  // namespace
}  // namespace dppr
