// Cross-engine property tests: randomized fuzzing of the full maintenance
// pipeline across every implementation, the undirected arrival model of
// Theorems 1/3, inverse-batch recovery, and the Monte-Carlo sample-size
// formula of §5.1.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "core/dynamic_ppr.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "mc/incremental_mc.h"
#include "stream/batch_utils.h"
#include "util/random.h"
#include "vc/ligra_ppr.h"

namespace dppr {
namespace {

// Builds a random batch against the current graph: a mix of insertions
// (possibly duplicating existing edges, possibly to brand-new vertices)
// and deletions of existing edges.
UpdateBatch RandomBatch(const DynamicGraph& g, int size, Rng* rng,
                        bool allow_new_vertices) {
  UpdateBatch batch;
  std::vector<Edge> pool = g.ToEdgeList();
  for (int i = 0; i < size; ++i) {
    const bool remove = !pool.empty() && rng->NextBernoulli(0.45);
    if (remove) {
      const auto idx = static_cast<size_t>(rng->NextBounded(pool.size()));
      batch.push_back(EdgeUpdate::Delete(pool[idx].u, pool[idx].v));
      pool[idx] = pool.back();
      pool.pop_back();
    } else {
      const auto span = static_cast<uint64_t>(g.NumVertices()) +
                        (allow_new_vertices ? 3 : 0);
      const auto u = static_cast<VertexId>(rng->NextBounded(span));
      const auto v = static_cast<VertexId>(rng->NextBounded(span));
      batch.push_back(EdgeUpdate::Insert(u, v));
      pool.push_back({u, v});
    }
  }
  return batch;
}

// ----------------------------------------------- all-engines agreement

// Every engine maintains an eps-approximation, so on identical input any
// two engines' estimates differ by at most 2*eps — and all match the
// oracle within eps.
TEST(CrossEngineTest, AllEnginesAgreeUnderRandomChurn) {
  Rng rng(2024);
  auto edges = GenerateRmat({.scale = 7, .avg_degree = 6, .seed = 12});
  const double eps = 1e-6;

  DynamicGraph g_seq = DynamicGraph::FromEdges(edges, 1 << 7);
  DynamicGraph g_opt = DynamicGraph::FromEdges(edges, 1 << 7);
  DynamicGraph g_van = DynamicGraph::FromEdges(edges, 1 << 7);
  DynamicGraph g_lig = DynamicGraph::FromEdges(edges, 1 << 7);

  PprOptions seq_opt;
  seq_opt.eps = eps;
  seq_opt.variant = PushVariant::kSequential;
  PprOptions opt_opt = seq_opt;
  opt_opt.variant = PushVariant::kOpt;
  PprOptions van_opt = seq_opt;
  van_opt.variant = PushVariant::kVanilla;

  DynamicPpr seq(&g_seq, 1, seq_opt);
  DynamicPpr opt(&g_opt, 1, opt_opt);
  DynamicPpr van(&g_van, 1, van_opt);
  LigraPpr lig(&g_lig, 1, seq_opt);
  seq.Initialize();
  opt.Initialize();
  van.Initialize();
  lig.Initialize();

  PowerIterationOptions oracle_opt;
  for (int round = 0; round < 5; ++round) {
    // Same batch everywhere (graphs stay identical).
    UpdateBatch batch = RandomBatch(*seq.graph(), 30, &rng,
                                    /*allow_new_vertices=*/true);
    seq.ApplyBatch(batch);
    opt.ApplyBatch(batch);
    van.ApplyBatch(batch);
    lig.ApplyBatch(batch);

    auto truth = PowerIterationPpr(g_seq, 1, oracle_opt);
    ASSERT_LE(MaxAbsError(seq.Estimates(), truth), eps * 1.0001);
    ASSERT_LE(MaxAbsError(opt.Estimates(), truth), eps * 1.0001);
    ASSERT_LE(MaxAbsError(van.Estimates(), truth), eps * 1.0001);
    ASSERT_LE(MaxAbsError(lig.Estimates(), truth), eps * 1.0001);
    ASSERT_LE(MaxAbsError(opt.Estimates(), seq.Estimates()), 2 * eps);
    ASSERT_LE(MaxAbsError(lig.Estimates(), van.Estimates()), 2 * eps);
  }
}

// ------------------------------------------------- undirected model

// Theorem 1/3's second arrival model: arbitrary edge updates of an
// undirected graph, each applied as two directed updates.
TEST(UndirectedModelTest, MaintenanceStaysAccurate) {
  Rng rng(77);
  auto base = GenerateErdosRenyi(60, 200, 5);
  DynamicGraph g = DynamicGraph::FromEdges(Symmetrize(base), 60);
  PprOptions options;
  options.eps = 1e-6;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();

  PowerIterationOptions oracle_opt;
  for (int round = 0; round < 6; ++round) {
    // Build an undirected batch: pick directed half-updates against the
    // current graph, then double them.
    UpdateBatch half;
    auto pool = g.ToEdgeList();
    for (int i = 0; i < 10; ++i) {
      // Deletions must pick an edge whose reverse also exists; in a
      // symmetrized graph every edge qualifies. Avoid picking the same
      // undirected edge twice by re-listing after each choice.
      if (!pool.empty() && rng.NextBernoulli(0.5)) {
        for (int attempt = 0; attempt < 20; ++attempt) {
          const auto idx =
              static_cast<size_t>(rng.NextBounded(pool.size()));
          const Edge e = pool[idx];
          bool already = false;
          for (const EdgeUpdate& up : half) {
            if ((up.u == e.u && up.v == e.v) ||
                (up.u == e.v && up.v == e.u)) {
              already = true;
              break;
            }
          }
          if (already) continue;
          half.push_back(EdgeUpdate::Delete(e.u, e.v));
          break;
        }
      } else {
        const auto u = static_cast<VertexId>(rng.NextBounded(60));
        const auto v = static_cast<VertexId>(rng.NextBounded(60));
        if (u != v) half.push_back(EdgeUpdate::Insert(u, v));
      }
    }
    ppr.ApplyBatch(MakeUndirectedBatch(half));
    ASSERT_LE(ppr.state().MaxAbsResidual(), options.eps);
    auto truth = PowerIterationPpr(g, 0, oracle_opt);
    ASSERT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001)
        << "round " << round;
  }
}

// ----------------------------------------------------- inverse batches

TEST(InverseBatchTest, ApplyThenUndoReturnsWithinTwoEps) {
  auto edges = GenerateRmat({.scale = 8, .avg_degree = 8, .seed = 3});
  DynamicGraph g = DynamicGraph::FromEdges(edges, 1 << 8);
  PprOptions options;
  options.eps = 1e-7;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  auto before = ppr.Estimates();

  UpdateBatch batch = {EdgeUpdate::Insert(3, 7), EdgeUpdate::Insert(9, 0),
                       EdgeUpdate::Delete(edges[0].u, edges[0].v)};
  UpdateBatch inverse;
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    inverse.push_back(it->op == UpdateOp::kInsert
                          ? EdgeUpdate::Delete(it->u, it->v)
                          : EdgeUpdate::Insert(it->u, it->v));
  }
  ppr.ApplyBatch(batch);
  ppr.ApplyBatch(inverse);
  // The graph is back to the original; both states eps-approximate the
  // same truth.
  EXPECT_LE(MaxAbsError(ppr.Estimates(), before), 2 * options.eps);
}

// -------------------------------------------- alpha extremes + fuzzing

class AlphaEpsFuzzTest
    : public testing::TestWithParam<std::tuple<double, double, uint64_t>> {};

TEST_P(AlphaEpsFuzzTest, MaintainedVectorMatchesOracle) {
  const auto [alpha, eps, seed] = GetParam();
  Rng rng(seed);
  auto edges = GenerateErdosRenyi(80, 400, seed);
  DynamicGraph g = DynamicGraph::FromEdges(edges, 80);
  PprOptions options;
  options.alpha = alpha;
  options.eps = eps;
  options.variant = PushVariant::kOpt;
  DynamicPpr ppr(&g, 2, options);
  ppr.Initialize();
  for (int round = 0; round < 3; ++round) {
    ppr.ApplyBatch(RandomBatch(g, 20, &rng, /*allow_new_vertices=*/false));
  }
  PowerIterationOptions oracle_opt;
  oracle_opt.alpha = alpha;
  auto truth = PowerIterationPpr(g, 2, oracle_opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), eps * 1.0001);
  EXPECT_LE(ppr.state().MaxAbsResidual(), eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlphaEpsFuzzTest,
    testing::Combine(testing::Values(0.05, 0.15, 0.5, 0.95),
                     testing::Values(1e-4, 1e-6, 1e-8),
                     testing::Values(11, 29, 47)));

// ----------------------------------------------------- walk count (§5.1)

TEST(WalkCountTest, PaperParametersGiveSixTimesV) {
  // delta = 1/|V|, pf = 2/e, eps_r = 0.71  =>  w ≈ 5.95 |V| ("6|V|").
  const double n = 100000;
  const int64_t w = RecommendedWalkCount(1.0 / n, 2.0 / std::exp(1.0), 0.71);
  EXPECT_NEAR(static_cast<double>(w) / n, 5.95, 0.02);
}

TEST(WalkCountTest, StricterGuaranteesNeedMoreWalks) {
  const int64_t base = RecommendedWalkCount(1e-4, 0.1, 0.5);
  EXPECT_GT(RecommendedWalkCount(1e-5, 0.1, 0.5), base);   // smaller delta
  EXPECT_GT(RecommendedWalkCount(1e-4, 0.01, 0.5), base);  // smaller pf
  EXPECT_GT(RecommendedWalkCount(1e-4, 0.1, 0.25), base);  // smaller eps_r
}

TEST(WalkCountTest, MatchesClosedForm) {
  // 3 * ln(2/0.5) / (0.5^2 * 0.01) = 3 * ln(4) / 0.0025
  const double expected = 3.0 * std::log(4.0) / 0.0025;
  EXPECT_EQ(RecommendedWalkCount(0.01, 0.5, 0.5),
            static_cast<int64_t>(std::ceil(expected)));
}

}  // namespace
}  // namespace dppr
