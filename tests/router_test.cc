// ShardedPprService tests.
//
// Three layers, matching the subsystem:
//  * HashRing / RouterMigration — placement determinism, balance, the
//    consistent-hashing "only ~1/N moves" property, and the migration
//    blob codec (round-trip + corruption detection).
//  * PprRouterTest — the equivalence suite: under a seeded interleaving
//    of updates, point/top-k queries, and source churn, a K-shard router
//    (K = 1, 2, 4) must answer exactly like an unsharded PprService
//    (same statuses, same epochs, values equal up to the paper's ±eps
//    guarantee), and both must match power-iteration ground truth.
//  * PprRouterChaosTest — shards are added and drained MID-RUN while 4
//    concurrent clients query and a feeder streams updates: no source
//    may be lost, no epoch may regress, and only shed/backpressure (never
//    a wrong answer) may absorb the disruption. This test is in the TSan
//    CI net (ci/run_tsan.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "router/hash_ring.h"
#include "router/migration.h"
#include "router/sharded_service.h"
#include "server/ppr_service.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"

namespace dppr {
namespace {

// ------------------------------------------------------------- hash ring

TEST(HashRingTest, EmptyRingOwnsNothing) {
  ConsistentHashRing ring(16);
  EXPECT_EQ(ring.OwnerOf(0), -1);
  EXPECT_EQ(ring.NumShards(), 0u);
}

TEST(HashRingTest, DeterministicAcrossIdenticallyBuiltRings) {
  ConsistentHashRing a(32);
  ConsistentHashRing b(32);
  // Different insertion orders must not matter: placement is a pure
  // function of the shard SET.
  for (int id : {0, 1, 2, 3}) a.AddShard(id);
  for (int id : {3, 1, 0, 2}) b.AddShard(id);
  for (VertexId key = 0; key < 5000; ++key) {
    ASSERT_EQ(a.OwnerOf(key), b.OwnerOf(key)) << key;
  }
}

TEST(HashRingTest, OwnersComeFromTheShardSet) {
  ConsistentHashRing ring(32);
  ring.AddShard(7);
  ring.AddShard(9);
  for (VertexId key = 0; key < 1000; ++key) {
    const int owner = ring.OwnerOf(key);
    EXPECT_TRUE(owner == 7 || owner == 9) << key;
  }
  EXPECT_EQ(ring.ShardIds(), (std::vector<int>{7, 9}));
}

TEST(HashRingTest, VirtualNodesBalanceLoad) {
  ConsistentHashRing ring(64);
  constexpr int kShards = 4;
  constexpr VertexId kKeys = 20000;
  for (int id = 0; id < kShards; ++id) ring.AddShard(id);
  std::vector<int64_t> owned(kShards, 0);
  for (VertexId key = 0; key < kKeys; ++key) {
    ++owned[static_cast<size_t>(ring.OwnerOf(key))];
  }
  const double ideal = static_cast<double>(kKeys) / kShards;
  for (int id = 0; id < kShards; ++id) {
    EXPECT_GT(owned[static_cast<size_t>(id)], ideal * 0.5) << id;
    EXPECT_LT(owned[static_cast<size_t>(id)], ideal * 1.5) << id;
  }
}

TEST(HashRingTest, AddShardOnlyMovesKeysToTheNewcomer) {
  ConsistentHashRing before(64);
  for (int id = 0; id < 3; ++id) before.AddShard(id);
  ConsistentHashRing after = before;
  after.AddShard(3);
  constexpr VertexId kKeys = 20000;
  int64_t moved = 0;
  for (VertexId key = 0; key < kKeys; ++key) {
    const int old_owner = before.OwnerOf(key);
    const int new_owner = after.OwnerOf(key);
    if (old_owner != new_owner) {
      // THE consistent-hashing property: a key never moves between two
      // surviving shards, only onto the newcomer.
      ASSERT_EQ(new_owner, 3) << key;
      ++moved;
    }
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.10) << "the newcomer must take real load";
  EXPECT_LT(fraction, 0.45) << "only ~1/N of the keys may move";
}

TEST(HashRingTest, RemoveShardOnlyMovesItsOwnKeys) {
  ConsistentHashRing before(64);
  for (int id = 0; id < 4; ++id) before.AddShard(id);
  ConsistentHashRing after = before;
  after.RemoveShard(2);
  for (VertexId key = 0; key < 20000; ++key) {
    const int old_owner = before.OwnerOf(key);
    const int new_owner = after.OwnerOf(key);
    if (old_owner != 2) {
      ASSERT_EQ(new_owner, old_owner)
          << "keys of surviving shards must not move";
    } else {
      ASSERT_NE(new_owner, 2);
    }
  }
}

// -------------------------------------------------------- migration blob

TEST(RouterMigrationTest, MaterializedRoundTrip) {
  ExportedSource src;
  src.source = 11;
  src.epoch = 42;
  src.materialized = true;
  src.state = PprState(11, 64);
  src.state.ResetToUnitResidual();
  src.state.p[5] = 0.125;

  std::string blob;
  ASSERT_TRUE(EncodeMigrationBlob(src, &blob).ok());
  ExportedSource decoded;
  ASSERT_TRUE(DecodeMigrationBlob(blob, &decoded).ok());
  EXPECT_EQ(decoded.source, 11);
  EXPECT_EQ(decoded.epoch, 42u);
  EXPECT_TRUE(decoded.materialized);
  EXPECT_EQ(decoded.state.p, src.state.p);
  EXPECT_EQ(decoded.state.r, src.state.r);
}

TEST(RouterMigrationTest, EvictedSourceTravelsAsIdPlusEpoch) {
  ExportedSource src;
  src.source = 3;
  src.epoch = 7;
  src.materialized = false;

  std::string blob;
  ASSERT_TRUE(EncodeMigrationBlob(src, &blob).ok());
  EXPECT_LT(blob.size(), 64u) << "no state payload for an evicted source";
  ExportedSource decoded;
  ASSERT_TRUE(DecodeMigrationBlob(blob, &decoded).ok());
  EXPECT_EQ(decoded.source, 3);
  EXPECT_EQ(decoded.epoch, 7u);
  EXPECT_FALSE(decoded.materialized);
}

TEST(RouterMigrationTest, DetectsCorruptionAndTruncation) {
  ExportedSource src;
  src.source = 0;
  src.epoch = 1;
  src.materialized = true;
  src.state = PprState(0, 32);
  src.state.ResetToUnitResidual();
  std::string blob;
  ASSERT_TRUE(EncodeMigrationBlob(src, &blob).ok());

  ExportedSource decoded;
  EXPECT_TRUE(DecodeMigrationBlob("nonsense", &decoded).IsCorruption());
  EXPECT_TRUE(DecodeMigrationBlob(blob.substr(0, blob.size() - 9), &decoded)
                  .IsCorruption());
  std::string flipped = blob;
  flipped[blob.size() / 2] =
      static_cast<char>(flipped[blob.size() / 2] ^ 0x40);
  EXPECT_TRUE(DecodeMigrationBlob(flipped, &decoded).IsCorruption());
}

// ------------------------------------------------------ equivalence suite

/// Shared workload: a sliding-window stream over an Erdos-Renyi graph,
/// exactly like the PprService stress test.
struct RouterWorkload {
  std::vector<Edge> initial;
  VertexId num_vertices = 0;
  std::vector<UpdateBatch> batches;
  std::vector<VertexId> hubs;

  RouterWorkload(VertexId n, EdgeCount m, uint64_t seed, VertexId num_hubs,
                 int max_batches) {
    auto edges = GenerateErdosRenyi(n, m, seed);
    EdgeStream stream =
        EdgeStream::RandomPermutation(std::move(edges), seed + 1);
    SlidingWindow window(&stream, 0.5);
    initial = window.InitialEdges();
    num_vertices = stream.NumVertices();
    const EdgeCount batch_size = window.BatchForRatio(0.01);
    while (static_cast<int>(batches.size()) < max_batches &&
           window.CanSlide(batch_size)) {
      batches.push_back(window.NextBatch(batch_size));
    }
    DynamicGraph ranking = DynamicGraph::FromEdges(initial, num_vertices);
    hubs = TopOutDegreeVertices(ranking, num_hubs);
  }
};

void ExpectEquivalentPoint(const QueryResponse& ref,
                           const QueryResponse& got, double eps,
                           int shards) {
  ASSERT_EQ(got.status, ref.status) << shards << " shards";
  if (ref.status != RequestStatus::kOk) return;
  EXPECT_EQ(got.epoch, ref.epoch) << shards << " shards";
  // Parallel pushes are not bit-deterministic across instances, but both
  // answers are within ±eps of the same truth, hence within 2*eps of
  // each other — the paper's approximation guarantee.
  EXPECT_NEAR(got.estimate.value, ref.estimate.value, 2 * eps + 1e-12)
      << shards << " shards";
}

TEST(PprRouterTest, ShardCountsAgreeWithUnshardedServiceAndOracle) {
  constexpr double kEps = 1e-6;
  RouterWorkload workload(128, 1024, 29, /*num_hubs=*/6, /*max_batches=*/16);
  ASSERT_GE(workload.batches.size(), 8u);

  IndexOptions index_options;
  index_options.ppr.eps = kEps;
  // The adaptive dense/sparse kernel behind the full serving stack: the
  // sharded fleet must agree with the unsharded reference and the oracle
  // no matter which push direction each maintenance round picked.
  index_options.ppr.variant = PushVariant::kAdaptive;
  ServiceOptions service_options;
  service_options.num_workers = 2;

  // The reference: the unsharded serving stack.
  DynamicGraph ref_graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  PprIndex ref_index(&ref_graph, workload.hubs, index_options);
  ref_index.Initialize();
  PprService reference(&ref_index, service_options);
  reference.Start();

  // K-shard routers over the identical workload.
  std::vector<std::unique_ptr<ShardedPprService>> routers;
  std::vector<int> shard_counts = {1, 2, 4};
  for (int k : shard_counts) {
    ShardedServiceOptions options;
    options.num_shards = k;
    options.vnodes_per_shard = 32;
    options.index = index_options;
    options.service = service_options;
    routers.push_back(std::make_unique<ShardedPprService>(
        workload.initial, workload.num_vertices, workload.hubs, options));
    routers.back()->Start();
  }

  // A churned source outside the stable hub set.
  VertexId churn = 0;
  while (std::find(workload.hubs.begin(), workload.hubs.end(), churn) !=
         workload.hubs.end()) {
    ++churn;
  }
  bool churn_present = false;

  // Seeded interleaving of updates, queries, and source churn, applied in
  // lockstep to the reference and every router.
  std::mt19937 rng(4242);
  size_t next_batch = 0;
  for (int step = 0; step < 300; ++step) {
    const uint32_t dice = rng() % 100;
    const VertexId s =
        (churn_present && dice % 7 == 0)
            ? churn
            : workload.hubs[rng() % workload.hubs.size()];
    if (dice < 10 && next_batch < workload.batches.size()) {
      const UpdateBatch& batch = workload.batches[next_batch++];
      ASSERT_EQ(reference.ApplyUpdatesAsync(batch).get().status,
                RequestStatus::kOk);
      for (auto& router : routers) {
        ASSERT_EQ(router->ApplyUpdates(batch).status, RequestStatus::kOk);
      }
    } else if (dice < 15) {
      if (!churn_present) {
        const RequestStatus expected =
            reference.AddSourceAsync(churn).get().status;
        ASSERT_EQ(expected, RequestStatus::kOk);
        for (auto& router : routers) {
          EXPECT_EQ(router->AddSource(churn).status, expected);
        }
        churn_present = true;
      } else {
        const RequestStatus expected =
            reference.RemoveSourceAsync(churn).get().status;
        ASSERT_EQ(expected, RequestStatus::kOk);
        for (auto& router : routers) {
          EXPECT_EQ(router->RemoveSource(churn).status, expected);
        }
        churn_present = false;
      }
    } else if (dice < 30) {
      const QueryResponse ref_top = reference.TopK(s, 5);
      for (size_t r = 0; r < routers.size(); ++r) {
        const QueryResponse got = routers[r]->TopK(s, 5);
        ASSERT_EQ(got.status, ref_top.status) << shard_counts[r];
        if (ref_top.status != RequestStatus::kOk) continue;
        EXPECT_EQ(got.epoch, ref_top.epoch) << shard_counts[r];
        ASSERT_EQ(got.topk.entries.size(), ref_top.topk.entries.size());
        for (size_t e = 0; e < ref_top.topk.entries.size(); ++e) {
          // Same ranking up to the ±eps guarantee: the e-th score may
          // differ by at most the combined approximation slack.
          EXPECT_NEAR(got.topk.entries[e].score,
                      ref_top.topk.entries[e].score, 2 * kEps + 1e-12)
              << shard_counts[r] << " shards, rank " << e;
        }
      }
    } else {
      // Point query; sometimes for a source nobody indexes.
      const VertexId source = dice == 99 ? churn + 1000 : s;
      const VertexId v =
          static_cast<VertexId>(rng() % workload.num_vertices);
      const QueryResponse ref_q = reference.Query(source, v);
      for (size_t r = 0; r < routers.size(); ++r) {
        ExpectEquivalentPoint(ref_q, routers[r]->Query(source, v), kEps,
                              shard_counts[r]);
      }
    }
  }

  // Flush the rest of the stream so every instance saw the whole feed.
  while (next_batch < workload.batches.size()) {
    const UpdateBatch& batch = workload.batches[next_batch++];
    ASSERT_EQ(reference.ApplyUpdatesAsync(batch).get().status,
              RequestStatus::kOk);
    for (auto& router : routers) {
      ASSERT_EQ(router->ApplyUpdates(batch).status, RequestStatus::kOk);
    }
  }

  // Scatter-gather equivalence: multi-source reads match per-source
  // reference answers; the merged global top-k matches a merge of the
  // reference's per-source top-k lists.
  const VertexId probe = workload.hubs[0];
  for (auto& router : routers) {
    const std::vector<QueryResponse> multi =
        router->MultiSourceQuery(workload.hubs, probe);
    ASSERT_EQ(multi.size(), workload.hubs.size());
    for (size_t i = 0; i < workload.hubs.size(); ++i) {
      const QueryResponse ref_q = reference.Query(workload.hubs[i], probe);
      ASSERT_EQ(multi[i].status, ref_q.status);
      EXPECT_EQ(multi[i].epoch, ref_q.epoch);
      EXPECT_NEAR(multi[i].estimate.value, ref_q.estimate.value,
                  2 * kEps + 1e-12);
    }

    const GlobalTopKResult global = router->GlobalTopK(10);
    std::vector<GlobalTopKEntry> expected;
    for (VertexId hub : ref_index.Sources()) {
      const QueryResponse top = reference.TopK(hub, 10);
      ASSERT_EQ(top.status, RequestStatus::kOk);
      for (const ScoredVertex& entry : top.topk.entries) {
        expected.push_back({hub, entry});
      }
    }
    std::sort(expected.begin(), expected.end(),
              [](const GlobalTopKEntry& a, const GlobalTopKEntry& b) {
                if (a.entry.score != b.entry.score) {
                  return a.entry.score > b.entry.score;
                }
                if (a.source != b.source) return a.source < b.source;
                return a.entry.id < b.entry.id;
              });
    expected.resize(10);
    ASSERT_EQ(global.entries.size(), expected.size());
    EXPECT_EQ(global.sources_answered,
              static_cast<int64_t>(ref_index.NumSources()));
    EXPECT_EQ(global.sources_failed, 0);
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_NEAR(global.entries[e].entry.score, expected[e].entry.score,
                  2 * kEps + 1e-12)
          << "rank " << e;
    }
  }

  // Both the reference and every router match power-iteration ground
  // truth on the final graph, for every vertex of every source.
  std::vector<VertexId> check = workload.hubs;
  if (churn_present) check.push_back(churn);
  const PowerIterationOptions oracle_options;
  for (VertexId s_check : check) {
    const auto truth = PowerIterationPpr(ref_graph, s_check, oracle_options);
    for (VertexId v = 0; v < workload.num_vertices; v += 3) {
      const double expected = truth[static_cast<size_t>(v)];
      const QueryResponse ref_q = reference.Query(s_check, v);
      ASSERT_EQ(ref_q.status, RequestStatus::kOk);
      EXPECT_NEAR(ref_q.estimate.value, expected, kEps * 1.0001);
      for (auto& router : routers) {
        const QueryResponse got = router->Query(s_check, v);
        ASSERT_EQ(got.status, RequestStatus::kOk);
        EXPECT_NEAR(got.estimate.value, expected, kEps * 1.0001);
      }
    }
  }

  reference.Stop();
  for (auto& router : routers) router->Stop();

  // Metric aggregation sanity: counters survive, percentiles are ordered.
  for (auto& router : routers) {
    const MetricsReport report = router->Metrics();
    EXPECT_GT(report.queries_completed, 0);
    EXPECT_GE(report.query_p99_ms, report.query_p50_ms);
    EXPECT_GE(report.query_max_ms, report.query_p99_ms);
  }
}

// ------------------------------------------------------------ shard chaos

TEST(PprRouterChaosTest, ShardChurnUnderConcurrentLoadKeepsAnswersRight) {
  // 4 concurrent clients query stable hubs while a feeder streams updates
  // and a chaos thread grows and drains shards mid-run. Disruption may
  // surface ONLY as shedding/backpressure — never as a lost source, a
  // regressed epoch, an unknown stable source, or a value outside the
  // mathematically possible band. Runs under TSan in CI.
  constexpr double kEps = 1e-5;
  RouterWorkload workload(160, 1600, 31, /*num_hubs=*/8, /*max_batches=*/24);
  ASSERT_GE(workload.batches.size(), 12u);

  ShardedServiceOptions options;
  options.num_shards = 3;
  options.vnodes_per_shard = 32;
  options.index.ppr.eps = kEps;
  options.service.num_workers = 2;
  options.service.materialize_wait = std::chrono::milliseconds(500);
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, options);
  router.Start();

  const double alpha = options.index.ppr.alpha;
  std::atomic<bool> epoch_ok{true};
  std::atomic<bool> status_ok{true};
  std::atomic<bool> values_ok{true};
  std::atomic<int64_t> ok_count{0};
  std::atomic<int64_t> shed_count{0};

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 200;
  // Clients keep querying until the chaos thread has finished every
  // topology change, so the load genuinely overlaps the migrations.
  std::atomic<bool> chaos_done{false};
  auto client = [&](int id) {
    std::vector<uint64_t> last_epoch(workload.hubs.size(), 0);
    for (int q = 0; q < kQueriesPerClient || !chaos_done.load(); ++q) {
      const size_t i =
          static_cast<size_t>(q + id) % workload.hubs.size();
      const VertexId s = workload.hubs[i];
      const QueryResponse response =
          q % 4 == 3 ? router.TopK(s, 5) : router.Query(s, s);
      switch (response.status) {
        case RequestStatus::kOk:
          ok_count.fetch_add(1, std::memory_order_relaxed);
          if (q % 4 == 3) {
            for (size_t e = 1; e < response.topk.entries.size(); ++e) {
              if (response.topk.entries[e].score >
                  response.topk.entries[e - 1].score + 1e-12) {
                values_ok.store(false);
              }
            }
          } else if (response.estimate.value < alpha - 2 * kEps ||
                     response.estimate.value > 1.0 + 2 * kEps) {
            values_ok.store(false);
          }
          break;
        case RequestStatus::kShedQueueFull:
        case RequestStatus::kShedDeadline:
          shed_count.fetch_add(1, std::memory_order_relaxed);
          break;
        case RequestStatus::kNotMaterialized:
          break;  // legal transient (carries an epoch, checked below)
        default:
          // kUnknownSource / kClosed / kRejected for a stable hub IS a
          // wrong answer — exactly what migration must never produce.
          status_ok.store(false);
      }
      if (response.status == RequestStatus::kOk ||
          response.status == RequestStatus::kNotMaterialized) {
        if (response.epoch < last_epoch[i]) epoch_ok.store(false);
        last_epoch[i] = response.epoch;
      }
    }
  };

  std::thread feeder([&] {
    for (const UpdateBatch& batch : workload.batches) {
      const MaintResponse applied = router.ApplyUpdates(batch);
      EXPECT_EQ(applied.status, RequestStatus::kOk)
          << RequestStatusName(applied.status);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const int grown = router.AddShard();
    EXPECT_GE(grown, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Drain one of the ORIGINAL shards (id 0 always exists at start).
    EXPECT_TRUE(router.RemoveShard(0));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const int grown2 = router.AddShard();
    EXPECT_GE(grown2, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(router.RemoveShard(grown));
    chaos_done.store(true);
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (auto& t : clients) t.join();
  feeder.join();
  chaos.join();

  EXPECT_TRUE(status_ok.load())
      << "a stable hub answered unknown/closed during shard churn";
  EXPECT_TRUE(epoch_ok.load()) << "an epoch regressed across a migration";
  EXPECT_TRUE(values_ok.load()) << "a value left the possible band";
  EXPECT_GT(ok_count.load(), kClients * kQueriesPerClient / 2);

  // Net topology: 3 - 1 + 1 = 3 shards, and shard 0 is gone.
  EXPECT_EQ(router.NumShards(), 3u);
  const std::vector<int> ids = router.ShardIds();
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 0) == ids.end());

  // No source lost, and every source sits exactly on its ring owner.
  std::vector<VertexId> remaining = router.Sources();
  std::sort(remaining.begin(), remaining.end());
  std::vector<VertexId> expected = workload.hubs;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(remaining, expected);
  for (VertexId hub : workload.hubs) {
    const int owner = router.OwnerOf(hub);
    const std::vector<VertexId> on_owner = router.SourcesOnShard(owner);
    EXPECT_TRUE(std::find(on_owner.begin(), on_owner.end(), hub) !=
                on_owner.end())
        << "hub " << hub << " missing from its owner shard " << owner;
  }

  const RouterReport report = router.Report();
  EXPECT_GT(report.sources_migrated, 0) << "chaos must have moved sources";
  EXPECT_GT(report.migration_bytes, 0);

  // End-to-end accuracy after the dust settles: every hub matches the
  // oracle on the final graph (replayed independently).
  DynamicGraph final_graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  for (const UpdateBatch& batch : workload.batches) {
    for (const EdgeUpdate& update : batch) final_graph.Apply(update);
  }
  const PowerIterationOptions oracle_options;
  for (VertexId hub : workload.hubs) {
    const auto truth = PowerIterationPpr(final_graph, hub, oracle_options);
    for (VertexId v = 0; v < workload.num_vertices; v += 5) {
      const QueryResponse got = router.Query(hub, v);
      ASSERT_EQ(got.status, RequestStatus::kOk);
      EXPECT_NEAR(got.estimate.value, truth[static_cast<size_t>(v)],
                  kEps * 1.0001)
          << "hub " << hub << " vertex " << v;
    }
  }
  router.Stop();

  // The combined metrics survive shard removal (retired accumulators).
  const MetricsReport metrics = router.Metrics();
  EXPECT_GE(metrics.queries_completed, ok_count.load());
  EXPECT_GE(metrics.query_p99_ms, metrics.query_p50_ms);
  EXPECT_GT(metrics.batches_applied, 0);
}

}  // namespace
}  // namespace dppr
