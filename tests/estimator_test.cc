// Estimator subsystem tests (src/estimator/).
//
// Four layers, matching the subsystem's contracts:
//  * ReversePushTest — the maintained target-side invariant against the
//    forward power-iteration oracle: pi_s(t) read from target t's reverse
//    state must match the forward PPR of s evaluated at t, within eps,
//    across a sliding-window feed (insertions AND deletions, including
//    vertices that go dangling mid-stream).
//  * WalkIndexTest — the determinism contract (two replicas fed the same
//    update sequence hold bitwise-identical indexes, which is what lets
//    hybrid queries route purely by target) and the repair-vs-regenerate
//    equivalence (a repaired index is as unbiased as one resampled from
//    scratch on the final graph).
//  * HybridTest — the BiPPR combination: always inside the deterministic
//    ±eps interval, and on average strictly closer to the truth than the
//    push-only point.
//  * EstimatorFleetTest — the serving path: a sharded fleet with a shard
//    joined OVER THE WIRE answers kQueryPair / kHybridQuery / kReverseTopK
//    in lockstep equivalence with an unsharded reference stack.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "analysis/power_iteration.h"
#include "estimator/estimator_index.h"
#include "estimator/walk_index.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "net/ppr_server.h"
#include "net/remote_client.h"
#include "router/sharded_service.h"
#include "server/ppr_service.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"

namespace dppr {
namespace {

/// Sliding-window workload, the same harness shape as the router and
/// storage equivalence suites: deletions are half the feed, so reverse
/// states see residuals of both signs and walks get severed mid-trace.
struct EstimatorWorkload {
  std::vector<Edge> initial;
  VertexId num_vertices = 0;
  std::vector<UpdateBatch> batches;
  std::vector<VertexId> hubs;

  EstimatorWorkload(VertexId n, EdgeCount m, uint64_t seed, int num_hubs,
                    int max_batches) {
    auto edges = GenerateErdosRenyi(n, m, seed);
    EdgeStream stream =
        EdgeStream::RandomPermutation(std::move(edges), seed + 1);
    SlidingWindow window(&stream, 0.5);
    initial = window.InitialEdges();
    num_vertices = stream.NumVertices();
    const EdgeCount batch_size = window.BatchForRatio(0.02);
    while (static_cast<int>(batches.size()) < max_batches &&
           window.CanSlide(batch_size)) {
      batches.push_back(window.NextBatch(batch_size));
    }
    DynamicGraph ranking = DynamicGraph::FromEdges(initial, num_vertices);
    hubs = TopOutDegreeVertices(ranking, num_hubs);
  }
};

/// pi_s(t) to oracle precision on the current graph.
double OracleValue(const DynamicGraph& g, VertexId s, VertexId t) {
  PowerIterationOptions opt;
  const auto truth = ForwardPowerIterationPpr(g, s, opt);
  return truth[static_cast<size_t>(t)];
}

// ---------------------------------------------------------- reverse push

TEST(ReversePushTest, TracksForwardOracleUnderChurn) {
  constexpr double kEps = 1e-4;
  EstimatorWorkload workload(96, 700, 61, /*num_hubs=*/4, /*max_batches=*/8);
  ASSERT_GE(workload.batches.size(), 4u);

  DynamicGraph oracle_graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  EstimatorOptions options;
  options.enabled = true;
  options.eps = kEps;
  EstimatorIndex index(oracle_graph, options);

  // A hub, a mid-degree vertex, and (when one exists) a vertex that is
  // dangling on the initial graph — its stop mass b(t) = 1, the branch
  // the restore identity must keep right as edges churn around it.
  std::vector<VertexId> targets = {workload.hubs[0],
                                   workload.num_vertices / 2};
  for (VertexId v = 0; v < workload.num_vertices; ++v) {
    if (oracle_graph.OutDegree(v) == 0) {
      targets.push_back(v);
      break;
    }
  }
  for (VertexId t : targets) ASSERT_TRUE(index.AddTarget(t));

  auto check_against_oracle = [&](const std::string& when) {
    for (VertexId t : targets) {
      for (VertexId s = 0; s < workload.num_vertices; s += 7) {
        const double truth = OracleValue(oracle_graph, s, t);
        const PairResult got = index.QueryPair(s, t);
        ASSERT_TRUE(got.known);
        EXPECT_NEAR(got.estimate.value, truth, kEps * 1.0001)
            << when << ": s=" << s << " t=" << t;
        EXPECT_LE(got.estimate.lower, truth + 1e-12) << when;
        EXPECT_GE(got.estimate.upper, truth - 1e-12) << when;
      }
    }
  };
  check_against_oracle("initial");

  for (size_t b = 0; b < workload.batches.size(); ++b) {
    for (const EdgeUpdate& update : workload.batches[b]) {
      oracle_graph.Apply(update);
    }
    index.ApplyBatch(workload.batches[b], 1);
    EXPECT_EQ(index.epoch(), b + 1);
    EXPECT_EQ(index.GraphChecksum(), oracle_graph.Checksum())
        << "the private replica must track the applied feed exactly";
  }
  check_against_oracle("after the full feed");
}

TEST(ReversePushTest, ReverseTopKAgreesWithPairReads) {
  constexpr double kEps = 1e-4;
  EstimatorWorkload workload(96, 700, 67, 4, 6);
  DynamicGraph graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  EstimatorOptions options;
  options.enabled = true;
  options.eps = kEps;
  EstimatorIndex index(graph, options);
  const VertexId t = workload.hubs[0];
  ASSERT_TRUE(index.AddTarget(t));
  for (const UpdateBatch& batch : workload.batches) {
    for (const EdgeUpdate& update : batch) graph.Apply(update);
    index.ApplyBatch(batch, 1);
  }

  const ReverseTopKResult top = index.ReverseTopK(t, 5);
  ASSERT_TRUE(top.known);
  ASSERT_EQ(top.topk.entries.size(), 5u);
  double prev = 2.0;
  for (const ScoredVertex& entry : top.topk.entries) {
    EXPECT_LE(entry.score, prev) << "scores must be sorted descending";
    prev = entry.score;
    // Each reported score IS the pair read for that source...
    const PairResult pair = index.QueryPair(entry.id, t);
    ASSERT_TRUE(pair.known);
    EXPECT_EQ(entry.score, pair.estimate.value);
    // ...and carries the same ±eps contract against the oracle.
    EXPECT_NEAR(entry.score, OracleValue(graph, entry.id, t), kEps * 1.0001);
  }

  EXPECT_FALSE(index.ReverseTopK(t + 1 == workload.num_vertices ? 0 : t + 1,
                                 5)
                   .known)
      << "an unregistered target must be reported unknown, not zero";
}

// ------------------------------------------------------------ walk index

TEST(WalkIndexTest, ReplicasRepairToBitwiseIdenticalIndexes) {
  EstimatorWorkload workload(80, 520, 71, 3, 8);
  DynamicGraph graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  WalkIndexOptions options;
  options.walks_per_vertex = 4;
  options.seed = 1234;
  WalkIndex a(options);
  WalkIndex b(options);
  a.Initialize(graph);
  b.Initialize(graph);

  // Two "shards" fed the identical update sequence — the routing
  // precondition: hybrid answers must not depend on which replica serves
  // them, so the indexes must agree EXACTLY, not just statistically.
  uint64_t seq = 0;
  for (const UpdateBatch& batch : workload.batches) {
    for (const EdgeUpdate& update : batch) {
      graph.Apply(update);
      ++seq;
      a.ApplyUpdate(graph, update, seq);
      b.ApplyUpdate(graph, update, seq);
    }
  }
  ASSERT_EQ(a.NumWalks(), b.NumWalks());
  EXPECT_GT(a.walks_repaired(), 0) << "the feed must have exercised repair";

  std::mt19937 rng(5);
  std::vector<double> residuals(
      static_cast<size_t>(graph.NumVertices()));
  for (double& r : residuals) {
    r = std::uniform_real_distribution<double>(-1.0, 1.0)(rng);
  }
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    EXPECT_EQ(a.TraceSumMean(s, residuals), b.TraceSumMean(s, residuals))
        << "replica divergence at source " << s;
  }
}

TEST(WalkIndexTest, RepairedIndexIsAsUnbiasedAsRegenerated) {
  // Repair correctness, phrased as the property the hybrid estimator
  // actually needs: after the feed, the repaired index must estimate the
  // residual correction with no more bias than an index freshly sampled
  // on the final graph. eps is set coarse so the push point is crude and
  // the walk correction carries real weight.
  constexpr double kEps = 2e-3;
  EstimatorWorkload workload(80, 520, 73, 3, 8);
  DynamicGraph graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  EstimatorOptions options;
  options.enabled = true;
  options.eps = kEps;
  options.walks_per_vertex = 16;
  options.seed = 99;
  EstimatorIndex repaired(graph, options);
  const VertexId t = workload.hubs[0];
  ASSERT_TRUE(repaired.AddTarget(t));
  for (const UpdateBatch& batch : workload.batches) {
    for (const EdgeUpdate& update : batch) graph.Apply(update);
    repaired.ApplyBatch(batch, 1);
  }

  // The regenerate oracle: same options, constructed directly on the
  // final graph, so its walks are a from-scratch sample.
  EstimatorIndex regenerated(graph, options);
  ASSERT_TRUE(regenerated.AddTarget(t));

  double bias_repaired = 0.0;
  double bias_regenerated = 0.0;
  for (VertexId s = 0; s < workload.num_vertices; ++s) {
    const double truth = OracleValue(graph, s, t);
    bias_repaired += repaired.HybridPair(s, t).estimate.value - truth;
    bias_regenerated += regenerated.HybridPair(s, t).estimate.value - truth;
  }
  bias_repaired /= workload.num_vertices;
  bias_regenerated /= workload.num_vertices;
  // Both are means of per-source unbiased estimators clamped into ±eps;
  // their average bias must be far inside the deterministic bound (the
  // push-only point is allowed to sit a full eps off).
  EXPECT_LT(std::fabs(bias_repaired), kEps / 4)
      << "repaired walks are biased — repair is not distribution-preserving";
  EXPECT_LT(std::fabs(bias_regenerated), kEps / 4);
}

// ---------------------------------------------------------------- hybrid

TEST(HybridTest, StaysInsideTheIntervalAndBeatsPushAlone) {
  constexpr double kEps = 2e-3;
  EstimatorWorkload workload(96, 700, 79, 4, 8);
  DynamicGraph graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  EstimatorOptions options;
  options.enabled = true;
  options.eps = kEps;
  options.walks_per_vertex = 16;
  EstimatorIndex index(graph, options);
  std::vector<VertexId> targets(workload.hubs.begin(),
                                workload.hubs.begin() + 3);
  for (VertexId t : targets) ASSERT_TRUE(index.AddTarget(t));
  for (const UpdateBatch& batch : workload.batches) {
    for (const EdgeUpdate& update : batch) graph.Apply(update);
    index.ApplyBatch(batch, 1);
  }

  double push_err = 0.0;
  double hybrid_err = 0.0;
  int pairs = 0;
  for (VertexId t : targets) {
    for (VertexId s = 0; s < workload.num_vertices; s += 2) {
      const double truth = OracleValue(graph, s, t);
      const PairResult push = index.QueryPair(s, t);
      const PairResult hybrid = index.HybridPair(s, t);
      ASSERT_TRUE(push.known && hybrid.known);
      // The hybrid point never leaves the deterministic certificate: the
      // same ±eps interval the pure push read reports.
      EXPECT_GE(hybrid.estimate.value, push.estimate.lower - 1e-15);
      EXPECT_LE(hybrid.estimate.value, push.estimate.upper + 1e-15);
      push_err += std::fabs(push.estimate.value - truth);
      hybrid_err += std::fabs(hybrid.estimate.value - truth);
      ++pairs;
    }
  }
  push_err /= pairs;
  hybrid_err /= pairs;
  // The unbiased correction must buy real accuracy, not just not hurt:
  // on average the hybrid point lands well inside the push-only error.
  EXPECT_LT(hybrid_err, push_err * 0.9)
      << "walk correction is not improving on the push point "
      << "(push " << push_err << ", hybrid " << hybrid_err << ")";
}

// ------------------------------------------------------- fleet lockstep

/// One estimator-enabled shard behind a real socket, the same harness
/// shape as net_test's ShardProcess.
struct EstimatorShardProcess {
  DynamicGraph graph;
  PprIndex index;
  PprService service;
  net::PprServer server;

  EstimatorShardProcess(const std::vector<Edge>& edges, VertexId num_vertices,
                        std::vector<VertexId> sources,
                        const IndexOptions& iopt, const ServiceOptions& sopt)
      : graph(DynamicGraph::FromEdges(edges, num_vertices)),
        index(&graph, std::move(sources), iopt),
        service(&index, sopt),
        server(&service, net::PprServerOptions{}) {
    index.Initialize();
    service.Start();
    const Status st = server.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  ~EstimatorShardProcess() {
    server.Stop();
    service.Stop();
  }
};

TEST(EstimatorFleetTest, ShardedFleetMatchesUnshardedOverTheWire) {
  constexpr double kEps = 1e-4;
  EstimatorWorkload workload(96, 700, 83, 5, 8);
  ASSERT_GE(workload.batches.size(), 4u);

  IndexOptions iopt;
  iopt.ppr.eps = 1e-6;
  ServiceOptions sopt;
  sopt.num_workers = 2;
  sopt.estimator.enabled = true;
  sopt.estimator.eps = kEps;
  sopt.estimator.walks_per_vertex = 4;
  sopt.estimator.seed = 7;

  // The reference: one unsharded estimator-enabled stack.
  DynamicGraph ref_graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  PprIndex ref_index(&ref_graph, workload.hubs, iopt);
  ref_index.Initialize();
  PprService reference(&ref_index, sopt);
  reference.Start();

  // The subject: two local shards plus one EMPTY shard joined over a
  // real loopback socket before the feed starts — estimator traffic to
  // targets it owns crosses the wire as kQueryPair / kHybridQuery /
  // kReverseTopK frames.
  EstimatorShardProcess remote(workload.initial, workload.num_vertices, {},
                               iopt, sopt);
  ShardedServiceOptions ropt;
  ropt.num_shards = 2;
  ropt.vnodes_per_shard = 32;
  ropt.index = iopt;
  ropt.service = sopt;
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, ropt);
  router.Start();
  ASSERT_GE(router.AddRemoteShard("127.0.0.1", remote.server.port()), 0);

  // Targets registered fleet-wide before the feed; every estimator
  // answer below is then a maintained read, never a fresh build.
  const std::vector<VertexId> targets(workload.hubs.begin(),
                                      workload.hubs.end());
  for (VertexId t : targets) {
    ASSERT_EQ(reference.AddTargetAsync(t).get().status, RequestStatus::kOk);
    ASSERT_EQ(router.AddTarget(t).status, RequestStatus::kOk);
  }
  EXPECT_EQ(router.Targets().size(), targets.size());

  std::mt19937 rng(4242);
  size_t next_batch = 0;
  for (int step = 0; step < 120; ++step) {
    const uint32_t dice = rng() % 100;
    const VertexId t = targets[rng() % targets.size()];
    const VertexId s =
        static_cast<VertexId>(rng() % workload.num_vertices);
    if (dice < 15 && next_batch < workload.batches.size()) {
      const UpdateBatch& batch = workload.batches[next_batch++];
      ASSERT_EQ(reference.ApplyUpdatesAsync(batch).get().status,
                RequestStatus::kOk);
      ASSERT_EQ(router.ApplyUpdates(batch).status, RequestStatus::kOk);
    } else if (dice < 40) {
      const QueryResponse ref_q = reference.QueryPairAsync(s, t).get();
      const QueryResponse got = router.QueryPair(s, t);
      ASSERT_EQ(got.status, ref_q.status);
      ASSERT_EQ(ref_q.status, RequestStatus::kOk);
      EXPECT_EQ(got.epoch, ref_q.epoch);
      // Reverse push and the walk index are both deterministic functions
      // of (options, update sequence): the fleet must agree with the
      // reference to within the two ±eps certificates.
      EXPECT_NEAR(got.estimate.value, ref_q.estimate.value, 2 * kEps);
    } else if (dice < 65) {
      const QueryResponse ref_q = reference.HybridPairAsync(s, t).get();
      const QueryResponse got = router.HybridPair(s, t);
      ASSERT_EQ(got.status, ref_q.status);
      ASSERT_EQ(ref_q.status, RequestStatus::kOk);
      EXPECT_EQ(got.epoch, ref_q.epoch);
      EXPECT_NEAR(got.estimate.value, ref_q.estimate.value, 2 * kEps);
    } else {
      const QueryResponse ref_q = reference.ReverseTopKAsync(t, 5).get();
      const QueryResponse got = router.ReverseTopK(t, 5);
      ASSERT_EQ(got.status, ref_q.status);
      ASSERT_EQ(ref_q.status, RequestStatus::kOk);
      EXPECT_EQ(got.epoch, ref_q.epoch);
      ASSERT_EQ(got.topk.entries.size(), ref_q.topk.entries.size());
      for (size_t e = 0; e < ref_q.topk.entries.size(); ++e) {
        EXPECT_NEAR(got.topk.entries[e].score,
                    ref_q.topk.entries[e].score, 2 * kEps)
            << "rank " << e;
      }
    }
  }
  ASSERT_GT(next_batch, 0u) << "the interleaving never applied a batch";

  // Cross-validate the final state against ground truth through BOTH
  // stacks: pair reads must sit within eps of the power-iteration value.
  const VertexId t_check = targets[0];
  for (VertexId s = 0; s < workload.num_vertices; s += 9) {
    const double truth = OracleValue(ref_graph, s, t_check);
    EXPECT_NEAR(reference.QueryPairAsync(s, t_check).get().estimate.value,
                truth, kEps * 1.0001);
    EXPECT_NEAR(router.QueryPair(s, t_check).estimate.value, truth,
                kEps * 1.0001);
  }

  // Target removal is fleet-wide too: afterwards every stack reports the
  // target unknown (kUnknownSource doubles as unknown-target).
  ASSERT_EQ(reference.RemoveTargetAsync(t_check).get().status,
            RequestStatus::kOk);
  ASSERT_EQ(router.RemoveTarget(t_check).status, RequestStatus::kOk);
  EXPECT_EQ(reference.QueryPairAsync(0, t_check).get().status,
            RequestStatus::kUnknownSource);
  EXPECT_EQ(router.QueryPair(0, t_check).status,
            RequestStatus::kUnknownSource);

  router.Stop();
  reference.Stop();
}

TEST(EstimatorFleetTest, DisabledEstimatorRejectsEveryVerb) {
  EstimatorWorkload workload(64, 400, 89, 3, 2);
  DynamicGraph graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  IndexOptions iopt;
  PprIndex index(&graph, workload.hubs, iopt);
  index.Initialize();
  ServiceOptions sopt;  // estimator.enabled defaults to false
  PprService service(&index, sopt);
  service.Start();
  EXPECT_EQ(service.AddTargetAsync(workload.hubs[0]).get().status,
            RequestStatus::kRejected);
  EXPECT_EQ(service.QueryPairAsync(0, workload.hubs[0]).get().status,
            RequestStatus::kRejected);
  EXPECT_EQ(service.HybridPairAsync(0, workload.hubs[0]).get().status,
            RequestStatus::kRejected);
  EXPECT_EQ(service.ReverseTopKAsync(workload.hubs[0], 5).get().status,
            RequestStatus::kRejected);
  EXPECT_TRUE(service.Targets().empty());
  service.Stop();
}

}  // namespace
}  // namespace dppr
