// Generator tests: simplicity (no loops/duplicates), determinism, size
// targets, degree skew, and the paper-example fixture's exact shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/datasets.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/graph_stats.h"

namespace dppr {
namespace {

void ExpectSimple(const std::vector<Edge>& edges) {
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : edges) {
    EXPECT_NE(e.u, e.v) << "self-loop";
    EXPECT_TRUE(seen.insert({e.u, e.v}).second)
        << "duplicate edge " << e.u << "->" << e.v;
  }
}

// ------------------------------------------------------------------ R-MAT

TEST(RmatTest, GeneratesTargetSize) {
  RmatOptions opt;
  opt.scale = 10;
  opt.avg_degree = 8;
  auto edges = GenerateRmat(opt);
  const auto target = static_cast<EdgeCount>(8 * 1024);
  EXPECT_GE(static_cast<EdgeCount>(edges.size()), target * 95 / 100);
  EXPECT_LE(static_cast<EdgeCount>(edges.size()), target);
  for (const Edge& e : edges) {
    EXPECT_GE(e.u, 0);
    EXPECT_LT(e.u, 1024);
    EXPECT_GE(e.v, 0);
    EXPECT_LT(e.v, 1024);
  }
}

TEST(RmatTest, SimpleGraph) {
  RmatOptions opt;
  opt.scale = 9;
  opt.avg_degree = 6;
  ExpectSimple(GenerateRmat(opt));
}

TEST(RmatTest, DeterministicPerSeed) {
  RmatOptions opt;
  opt.scale = 9;
  opt.seed = 5;
  auto a = GenerateRmat(opt);
  auto b = GenerateRmat(opt);
  EXPECT_EQ(a, b);
  opt.seed = 6;
  EXPECT_NE(GenerateRmat(opt), a);
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatOptions opt;
  opt.scale = 12;
  opt.avg_degree = 16;
  auto g = DynamicGraph::FromEdges(GenerateRmat(opt), 1 << 12);
  DegreeStats stats = ComputeDegreeStats(g);
  // R-MAT hubs should far exceed the average degree (power-law-ish tail);
  // a uniform G(n,m) would have max degree within ~3x of the mean.
  EXPECT_GT(stats.max_out_degree, 8 * stats.avg_out_degree);
}

// ------------------------------------------------------------ Erdős–Rényi

TEST(ErdosRenyiTest, ExactEdgeCountAndRange) {
  auto edges = GenerateErdosRenyi(100, 500, 3);
  EXPECT_EQ(edges.size(), 500u);
  ExpectSimple(edges);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, 100);
    EXPECT_LT(e.v, 100);
  }
}

TEST(ErdosRenyiTest, Deterministic) {
  EXPECT_EQ(GenerateErdosRenyi(50, 200, 9), GenerateErdosRenyi(50, 200, 9));
  EXPECT_NE(GenerateErdosRenyi(50, 200, 9), GenerateErdosRenyi(50, 200, 10));
}

TEST(ErdosRenyiTest, NearCompleteGraphTerminates) {
  // 90% of all possible edges: exercises the rejection path hard.
  auto edges = GenerateErdosRenyi(20, 342, 1);
  EXPECT_EQ(edges.size(), 342u);
  ExpectSimple(edges);
}

// -------------------------------------------------- preferential attachment

TEST(PreferentialTest, SizeAndSimplicity) {
  auto edges = GeneratePreferentialAttachment(500, 4, 11);
  ExpectSimple(edges);
  // Vertex v emits min(4, v) edges: 1 + 2 + 3 + 4*(n-4)... at most 4n.
  EXPECT_GT(edges.size(), 4u * 450u);
  EXPECT_LE(edges.size(), 4u * 500u);
}

TEST(PreferentialTest, EarlyVerticesAccumulateInDegree) {
  auto g =
      DynamicGraph::FromEdges(GeneratePreferentialAttachment(2000, 3, 13));
  // The seed vertex should be among the most popular targets.
  int64_t better = 0;
  for (VertexId v = 1; v < g.NumVertices(); ++v) {
    if (g.InDegree(v) > g.InDegree(0)) ++better;
  }
  EXPECT_LT(better, 20);
}

// ---------------------------------------------------------------- fixtures

TEST(FixturesTest, PaperExampleGraphShape) {
  DynamicGraph g = PaperExampleGraph();
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 5);
  // Paper edges (1-indexed): 1→4, 2→1, 3→1, 3→2, 4→3.
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_TRUE(g.HasEdge(3, 2));
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.OutDegree(2), 2);
}

TEST(FixturesTest, PathCycleCompleteStar) {
  EXPECT_EQ(PathGraph(5).NumEdges(), 4);
  EXPECT_EQ(CycleGraph(5).NumEdges(), 5);
  EXPECT_EQ(CompleteGraph(4).NumEdges(), 12);
  DynamicGraph star = StarGraph(6);
  EXPECT_EQ(star.NumEdges(), 10);
  EXPECT_EQ(star.OutDegree(0), 5);
  EXPECT_EQ(star.InDegree(0), 5);
}

TEST(FixturesTest, TwoCliquesBridge) {
  DynamicGraph g = TwoCliques(4);
  EXPECT_EQ(g.NumVertices(), 8);
  // Each clique: 4*3 edges; plus 2 bridge edges.
  EXPECT_EQ(g.NumEdges(), 2 * 12 + 2);
  EXPECT_TRUE(g.HasEdge(3, 4));
  EXPECT_TRUE(g.HasEdge(4, 3));
  EXPECT_FALSE(g.HasEdge(0, 5));
}

TEST(FixturesTest, SymmetrizeDoubles) {
  auto sym = Symmetrize({{0, 1}, {2, 3}});
  EXPECT_EQ(sym.size(), 4u);
  EXPECT_EQ(sym[1], (Edge{1, 0}));
}

// ---------------------------------------------------------------- datasets

TEST(DatasetsTest, RegistryHasFiveEntries) {
  EXPECT_EQ(AllDatasets().size(), 5u);
}

TEST(DatasetsTest, FindByNameWithAndWithoutSuffix) {
  DatasetSpec spec;
  ASSERT_TRUE(FindDataset("pokec-sim", &spec).ok());
  EXPECT_EQ(spec.name, "pokec-sim");
  ASSERT_TRUE(FindDataset("pokec", &spec).ok());
  EXPECT_EQ(spec.name, "pokec-sim");
  EXPECT_TRUE(FindDataset("facebook", &spec).IsNotFound());
}

TEST(DatasetsTest, GenerationMatchesAdvertisedDegree) {
  DatasetSpec spec;
  ASSERT_TRUE(FindDataset("youtube", &spec).ok());
  auto edges = GenerateDataset(spec, /*scale_shift=*/2);
  const auto n = static_cast<double>(VertexId{1} << (spec.scale - 2));
  const double avg = static_cast<double>(edges.size()) / n;
  EXPECT_NEAR(avg, spec.avg_degree, spec.avg_degree * 0.1);
}

TEST(DatasetsTest, SizeOrderingMatchesPaper) {
  // youtube < pokec on edge count (per-vertex), mirroring SNAP.
  DatasetSpec youtube;
  DatasetSpec pokec;
  ASSERT_TRUE(FindDataset("youtube", &youtube).ok());
  ASSERT_TRUE(FindDataset("pokec", &pokec).ok());
  auto e_youtube = GenerateDataset(youtube, 2);
  auto e_pokec = GenerateDataset(pokec, 2);
  EXPECT_LT(e_youtube.size(), e_pokec.size());
}

}  // namespace
}  // namespace dppr
