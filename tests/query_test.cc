// Tests for the error-aware query layer and state checkpointing.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "core/dynamic_ppr.h"
#include "core/query.h"
#include "core/serialization.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"

namespace dppr {
namespace {

// ------------------------------------------------------------- queries

TEST(QueryTest, PointEstimateIntervals) {
  PprState state(0, 3);
  state.p = {0.5, 0.0005, 0.2};
  PointEstimate a = QueryVertex(state, 1e-3, 0);
  EXPECT_DOUBLE_EQ(a.value, 0.5);
  EXPECT_DOUBLE_EQ(a.lower, 0.499);
  EXPECT_DOUBLE_EQ(a.upper, 0.501);
  // Lower bound clamps at zero (PPR values are probabilities).
  PointEstimate b = QueryVertex(state, 1e-3, 1);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
}

TEST(QueryTest, CertainlyAboveUsesIntervals) {
  PprState state(0, 2);
  state.p = {0.5, 0.4};
  EXPECT_TRUE(QueryVertex(state, 0.01, 0)
                  .CertainlyAbove(QueryVertex(state, 0.01, 1)));
  EXPECT_FALSE(QueryVertex(state, 0.06, 0)
                   .CertainlyAbove(QueryVertex(state, 0.06, 1)));
}

TEST(QueryTest, GuaranteedTopKCertifiesClearGaps) {
  // Estimates: 0.9, 0.8, 0.5, 0.49, 0.1 with eps = 0.01 and k = 3.
  // Boundary (4th) = 0.49. Certain requires > 0.49 + 0.02 = 0.51:
  // 0.9 and 0.8 qualify; 0.5 does not.
  std::vector<double> p = {0.9, 0.8, 0.5, 0.49, 0.1};
  GuaranteedTopK top = TopKWithGuarantee(p, 0.01, 3);
  ASSERT_EQ(top.entries.size(), 3u);
  EXPECT_EQ(top.entries[0].id, 0);
  EXPECT_EQ(top.entries[2].id, 2);
  EXPECT_EQ(top.certain_members, 2);
}

TEST(QueryTest, GuaranteedTopKAllCertainWhenWellSeparated) {
  std::vector<double> p = {0.9, 0.6, 0.3, 0.0};
  GuaranteedTopK top = TopKWithGuarantee(p, 0.01, 2);
  EXPECT_EQ(top.certain_members, 2);
}

TEST(QueryTest, GuaranteedTopKNoneCertainWhenTied) {
  std::vector<double> p = {0.5, 0.5, 0.5, 0.5};
  GuaranteedTopK top = TopKWithGuarantee(p, 0.01, 2);
  EXPECT_EQ(top.certain_members, 0);
}

TEST(QueryTest, GuaranteedTopKKExceedsNonzeroCount) {
  // k larger than the number of nonzero estimates: zero-score fillers pad
  // the result, the boundary is 0, and only entries clearing 2*eps above
  // zero are certified.
  std::vector<double> p = {0.4, 0.0, 0.2, 0.0, 0.0};
  GuaranteedTopK top = TopKWithGuarantee(p, 0.01, 4);
  ASSERT_EQ(top.entries.size(), 4u);
  EXPECT_EQ(top.entries[0].id, 0);
  EXPECT_EQ(top.entries[1].id, 2);
  EXPECT_DOUBLE_EQ(top.entries[2].score, 0.0);
  EXPECT_EQ(top.certain_members, 2);
}

TEST(QueryTest, GuaranteedTopKAllTiedFullVector) {
  // Every estimate tied AND k covers the whole vector: nothing is outside
  // the returned set, the boundary falls to 0, and all entries certify
  // (membership in the top-3 of 3 values is vacuous but true).
  std::vector<double> p = {0.3, 0.3, 0.3};
  GuaranteedTopK top = TopKWithGuarantee(p, 0.01, 3);
  ASSERT_EQ(top.entries.size(), 3u);
  EXPECT_EQ(top.certain_members, 3);
}

TEST(QueryTest, GuaranteedTopKLargeEpsCertifiesNothing) {
  // eps so large that even the clear leader cannot clear the boundary's
  // upper bound: the ranking is served, but zero entries are certified.
  std::vector<double> p = {0.9, 0.5, 0.3, 0.1};
  GuaranteedTopK top = TopKWithGuarantee(p, 0.5, 2);
  ASSERT_EQ(top.entries.size(), 2u);
  EXPECT_EQ(top.entries[0].id, 0);
  EXPECT_EQ(top.certain_members, 0);
}

TEST(QueryTest, GuaranteedTopKWholeVectorRequested) {
  std::vector<double> p = {0.5, 0.4};
  GuaranteedTopK top = TopKWithGuarantee(p, 0.001, 5);
  // k exceeds |V|: everything returned and certain (boundary = 0 ...
  // entries above 2*eps are certain).
  ASSERT_EQ(top.entries.size(), 2u);
  EXPECT_EQ(top.certain_members, 2);
}

TEST(QueryTest, EndToEndWithMaintainedState) {
  DynamicGraph g = DynamicGraph::FromEdges(
      GenerateErdosRenyi(128, 1024, 9), 128);
  PprOptions options;
  options.eps = 1e-7;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  GuaranteedTopK top = TopKWithGuarantee(ppr.Estimates(), options.eps, 10);
  ASSERT_EQ(top.entries.size(), 10u);
  // The source dominates its own contribution vector here; with eps=1e-7
  // the top entry is certainly a true top-10 member.
  EXPECT_GE(top.certain_members, 1);
  EXPECT_EQ(top.entries[0].id, 0);
}

// -------------------------------------------------------- serialization

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTrip) {
  PprState state(3, 100);
  for (int i = 0; i < 100; ++i) {
    state.p[static_cast<size_t>(i)] = i * 0.001;
    state.r[static_cast<size_t>(i)] = i * -0.0001;
  }
  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(SavePprState(path, state).ok());
  PprState loaded;
  ASSERT_TRUE(LoadPprState(path, &loaded).ok());
  EXPECT_EQ(loaded.source, 3);
  EXPECT_EQ(loaded.p, state.p);
  EXPECT_EQ(loaded.r, state.r);
  std::remove(path.c_str());
}

TEST(SerializationTest, StringBlobRoundTrip) {
  PprState state(7, 50);
  state.ResetToUnitResidual();
  state.p[9] = 0.25;
  std::string blob;
  ASSERT_TRUE(SerializePprState(state, &blob).ok());
  PprState decoded;
  ASSERT_TRUE(DeserializePprState(blob, &decoded).ok());
  EXPECT_EQ(decoded.source, 7);
  EXPECT_EQ(decoded.p, state.p);
  EXPECT_EQ(decoded.r, state.r);
}

TEST(SerializationTest, StringBlobMatchesFileBytes) {
  // The in-memory encoding and the on-disk checkpoint are the same bytes,
  // so a migration blob could be written straight to disk (or vice versa).
  PprState state(2, 40);
  state.ResetToUnitResidual();
  std::string blob;
  ASSERT_TRUE(SerializePprState(state, &blob).ok());
  const std::string path = TempPath("ckpt_blob_eq.bin");
  ASSERT_TRUE(SavePprState(path, state).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string file_bytes(blob.size() + 16, '\0');
  const size_t got = std::fread(file_bytes.data(), 1, file_bytes.size(), f);
  std::fclose(f);
  file_bytes.resize(got);
  EXPECT_EQ(file_bytes, blob);
  std::remove(path.c_str());
}

TEST(SerializationTest, StringBlobDetectsCorruption) {
  PprState state(0, 32);
  state.ResetToUnitResidual();
  std::string blob;
  ASSERT_TRUE(SerializePprState(state, &blob).ok());
  std::string flipped = blob;
  flipped[40] = static_cast<char>(flipped[40] ^ 0x10);
  PprState decoded;
  EXPECT_TRUE(DeserializePprState(flipped, &decoded).IsCorruption());
  EXPECT_TRUE(
      DeserializePprState(blob.substr(0, blob.size() / 2), &decoded)
          .IsCorruption());
  EXPECT_TRUE(DeserializePprState("garbage", &decoded).IsCorruption());
}

TEST(SerializationTest, DetectsBitFlip) {
  PprState state(0, 64);
  state.ResetToUnitResidual();
  const std::string path = TempPath("ckpt_corrupt.bin");
  ASSERT_TRUE(SavePprState(path, state).ok());
  // Flip one byte in the middle of the payload.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 64, SEEK_SET);
  const char byte = 0x5A;
  std::fwrite(&byte, 1, 1, f);
  std::fclose(f);
  PprState loaded;
  EXPECT_TRUE(LoadPprState(path, &loaded).IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializationTest, DetectsTruncation) {
  PprState state(0, 64);
  const std::string path = TempPath("ckpt_trunc.bin");
  ASSERT_TRUE(SavePprState(path, state).ok());
  ASSERT_EQ(truncate(path.c_str(), 100), 0);
  PprState loaded;
  EXPECT_TRUE(LoadPprState(path, &loaded).IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbageFile) {
  const std::string path = TempPath("ckpt_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a checkpoint", f);
  std::fclose(f);
  PprState loaded;
  EXPECT_TRUE(LoadPprState(path, &loaded).IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIOError) {
  PprState loaded;
  EXPECT_TRUE(LoadPprState("/nonexistent/x.bin", &loaded).IsIOError());
}

TEST(SerializationTest, ResumeMaintenanceAfterReload) {
  // Checkpoint mid-stream, reload into a fresh engine attached to an
  // identical graph, keep maintaining: results must match an engine that
  // never restarted.
  auto edges = GenerateErdosRenyi(64, 512, 11);
  DynamicGraph g1 = DynamicGraph::FromEdges(edges, 64);
  DynamicGraph g2 = DynamicGraph::FromEdges(edges, 64);
  PprOptions options;
  options.eps = 1e-7;
  // Sequential variant: bit-for-bit deterministic, so the restarted
  // engine must match the uninterrupted one exactly.
  options.variant = PushVariant::kSequential;
  DynamicPpr original(&g1, 5, options);
  original.Initialize();
  UpdateBatch first = {EdgeUpdate::Insert(1, 2), EdgeUpdate::Insert(3, 5)};
  original.ApplyBatch(first);

  const std::string path = TempPath("ckpt_resume.bin");
  ASSERT_TRUE(SavePprState(path, original.state()).ok());

  DynamicPpr resumed(&g2, 5, options);
  for (const EdgeUpdate& up : first) g2.Apply(up);  // replay graph side
  PprState loaded;
  ASSERT_TRUE(LoadPprState(path, &loaded).ok());
  resumed.RestoreFromState(std::move(loaded));

  UpdateBatch second = {EdgeUpdate::Delete(1, 2), EdgeUpdate::Insert(7, 5)};
  original.ApplyBatch(second);
  resumed.ApplyBatch(second);
  EXPECT_EQ(original.Estimates(), resumed.Estimates());
  EXPECT_EQ(original.Residuals(), resumed.Residuals());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dppr
