// Tests for the analysis module: power-iteration oracle (against closed
// forms), invariant defect, metrics, top-k, sweep cut.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "analysis/sweep_cut.h"
#include "analysis/topk.h"
#include "gen/fixtures.h"
#include "gen/generators.h"

namespace dppr {
namespace {

// ------------------------------------------------------- power iteration

TEST(PowerIterationTest, CycleClosedForm) {
  // On a directed n-cycle the walk from v visits s after k = (s - v) mod n
  // steps and again every n steps (laps), so
  //   p(v) = alpha * (1-alpha)^k * sum_j (1-alpha)^(j*n)
  //        = alpha * (1-alpha)^k / (1 - (1-alpha)^n).
  const VertexId n = 8;
  DynamicGraph g = CycleGraph(n);
  PowerIterationOptions opt;
  opt.alpha = 0.2;
  const VertexId s = 3;
  auto p = PowerIterationPpr(g, s, opt);
  const double lap = 1.0 - std::pow(0.8, n);
  for (VertexId v = 0; v < n; ++v) {
    const int k = (static_cast<int>(s) - static_cast<int>(v) + n) % n;
    EXPECT_NEAR(p[static_cast<size_t>(v)], 0.2 * std::pow(0.8, k) / lap,
                1e-10)
        << "vertex " << v;
  }
}

TEST(PowerIterationTest, PathClosedFormWithDanglingTail) {
  // Path 0->1->...->n-1; vertex n-1 dangles. From v <= s the walk reaches
  // s in s - v steps; from v > s it never does.
  const VertexId n = 6;
  DynamicGraph g = PathGraph(n);
  PowerIterationOptions opt;
  opt.alpha = 0.3;
  const VertexId s = 4;
  auto p = PowerIterationPpr(g, s, opt);
  for (VertexId v = 0; v < n; ++v) {
    double expected = 0.0;
    if (v <= s) expected = 0.3 * std::pow(0.7, s - v);
    EXPECT_NEAR(p[static_cast<size_t>(v)], expected, 1e-10) << "v=" << v;
  }
}

TEST(PowerIterationTest, ContributionsSumToOneWithoutDangling) {
  // sum_s p_s(v) = 1 for every v when every walk terminates at some
  // vertex (no dangling vertices): the walk from v ends somewhere.
  DynamicGraph g = CycleGraph(5);
  g.AddEdge(0, 2);
  g.AddEdge(3, 1);
  PowerIterationOptions opt;
  opt.alpha = 0.15;
  std::vector<double> total(5, 0.0);
  for (VertexId s = 0; s < 5; ++s) {
    auto p = PowerIterationPpr(g, s, opt);
    for (size_t v = 0; v < 5; ++v) total[v] += p[v];
  }
  for (size_t v = 0; v < 5; ++v) EXPECT_NEAR(total[v], 1.0, 1e-9);
}

TEST(PowerIterationTest, SourceOnlyMassOnIsolatedVertex) {
  DynamicGraph g(3);
  g.AddEdge(1, 2);  // vertex 0 isolated
  PowerIterationOptions opt;
  auto p = PowerIterationPpr(g, 0, opt);
  EXPECT_NEAR(p[0], opt.alpha, 1e-12);  // dangling source: stops immediately
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_NEAR(p[2], 0.0, 1e-12);
}

TEST(PowerIterationTest, InvariantDefectZeroAtFixedPoint) {
  DynamicGraph g = PaperExampleGraph();
  PowerIterationOptions opt;
  opt.alpha = 0.5;
  auto p = PowerIterationPpr(g, 0, opt);
  std::vector<double> r(4, 0.0);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NEAR(InvariantDefect(g, 0, v, 0.5, p, r), 0.0, 1e-9);
  }
}

TEST(PowerIterationTest, DefectDetectsViolation) {
  DynamicGraph g = CycleGraph(4);
  std::vector<double> p(4, 0.0);
  std::vector<double> r(4, 0.0);
  // All-zero state violates Eq. 2 exactly at the source by alpha.
  EXPECT_NEAR(InvariantDefect(g, 2, 2, 0.15, p, r), 0.15, 1e-12);
  EXPECT_NEAR(InvariantDefect(g, 2, 0, 0.15, p, r), 0.0, 1e-12);
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, Norms) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {1.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(MaxAbsError(a, b), 2.0);
  EXPECT_DOUBLE_EQ(L1Error(a, b), 2.5);
  EXPECT_DOUBLE_EQ(L1Norm(a), 6.0);
}

TEST(MetricsTest, TopKRecall) {
  std::vector<double> truth = {0.9, 0.5, 0.4, 0.1};
  std::vector<double> approx = {0.9, 0.38, 0.42, 0.1};  // swaps ranks 2/3
  EXPECT_DOUBLE_EQ(TopKRecall(approx, truth, 1), 1.0);
  EXPECT_DOUBLE_EQ(TopKRecall(approx, truth, 3), 1.0);  // same set
  std::vector<double> bad = {0.0, 0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(TopKRecall(bad, truth, 1), 0.0);
}

// -------------------------------------------------------------------- topk

TEST(TopKTest, OrdersByScoreThenId) {
  std::vector<double> scores = {0.3, 0.9, 0.3, 0.5};
  auto top = TopK(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 1);
  EXPECT_EQ(top[1].id, 3);
  EXPECT_EQ(top[2].id, 0);  // tie with id 2 broken by smaller id
}

TEST(TopKTest, ClampsK) {
  std::vector<double> scores = {0.1, 0.2};
  EXPECT_EQ(TopK(scores, 10).size(), 2u);
  EXPECT_EQ(TopK(scores, 0).size(), 0u);
}

TEST(TopKTest, ExcludeList) {
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  auto top = TopKExcluding(scores, 2, {0, 2});
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1);
  EXPECT_EQ(top[1].id, 3);
}

// --------------------------------------------------------------- sweep cut

TEST(SweepCutTest, RecoversPlantedClique) {
  const VertexId k = 6;
  DynamicGraph g = TwoCliques(k);
  // Score vector concentrated on clique 0 (as a PPR vector from vertex 0
  // would be): high inside, epsilon outside.
  std::vector<double> p(static_cast<size_t>(2 * k), 1e-6);
  for (VertexId v = 0; v < k; ++v) p[static_cast<size_t>(v)] = 0.1;
  SweepCutResult result = SweepCut(g, p);
  ASSERT_EQ(result.community.size(), static_cast<size_t>(k));
  for (VertexId v : result.community) EXPECT_LT(v, k);
  // Cut = 2 bridge edges, vol(S) = 2 * (k*(k-1)) + 2.
  const double expected =
      2.0 / static_cast<double>(2 * k * (k - 1) + 2);
  EXPECT_NEAR(result.conductance, expected, 1e-12);
}

TEST(SweepCutTest, EmptyScoresGiveEmptyCommunity) {
  DynamicGraph g = TwoCliques(3);
  std::vector<double> p(6, 0.0);
  SweepCutResult result = SweepCut(g, p);
  EXPECT_TRUE(result.community.empty());
  EXPECT_DOUBLE_EQ(result.conductance, 1.0);
}

}  // namespace
}  // namespace dppr
