// SequentialLocalPush (Algorithm 2) tests: the paper's exact walkthroughs
// (Figures 1 and 3), the eps-approximation guarantee against the oracle,
// and incremental-vs-scratch equivalence through the DynamicPpr facade.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "core/dynamic_ppr.h"
#include "core/invariant.h"
#include "core/seq_push.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/random.h"

namespace dppr {
namespace {

constexpr double kPaperAlpha = 0.5;
constexpr double kPaperEps = 0.1;

// Figure 3 b(1)-b(5): from-scratch sequential push on the example graph
// converges to p = (0.5, 0.25, 0.1875, 0.09375), r = (0.09375, 0, 0, 0)
// when the frontier is processed in FIFO order.
TEST(SeqPushTest, PaperFigure3SequentialTrace) {
  DynamicGraph g = PaperExampleGraph();
  PprState state(0, 4);
  state.ResetToUnitResidual();
  PushCounters counters;
  SequentialLocalPush(g, &state, kPaperAlpha, kPaperEps,
                      std::vector<VertexId>{0}, &counters);
  EXPECT_NEAR(state.p[0], 0.5, 1e-12);
  EXPECT_NEAR(state.p[1], 0.25, 1e-12);
  EXPECT_NEAR(state.p[2], 0.1875, 1e-12);
  EXPECT_NEAR(state.p[3], 0.09375, 1e-12);
  EXPECT_NEAR(state.r[0], 0.09375, 1e-12);
  EXPECT_NEAR(state.r[1], 0.0, 1e-12);
  EXPECT_NEAR(state.r[2], 0.0, 1e-12);
  EXPECT_NEAR(state.r[3], 0.0, 1e-12);
  // Figure 3(b) pushes exactly {v1, v2, v3, v4}: 4 push operations.
  EXPECT_EQ(counters.push_ops, 4);
}

// Figure 1: starting from the converged Figure 1(a) state, insert e1 and
// maintain. Figure 1(d) gives the converged state (its P1(1)=0.5812 is a
// typo; the batch case Figure 2(d) prints the same quantity as 0.5781 =
// exact 0.578125, which the arithmetic confirms).
TEST(SeqPushTest, PaperFigure1SingleUpdate) {
  DynamicGraph g = PaperExampleGraph();
  PprState state(0, 4);
  state.p = {0.5, 0.25, 0.1875, 0.0625};
  state.r = {0.0625, 0.0, 0.0, 0.0625};
  const EdgeUpdate e1 = PaperExampleInsertE1();
  g.Apply(e1);
  RestoreInvariant(g, &state, e1, kPaperAlpha);
  SequentialLocalPush(g, &state, kPaperAlpha, kPaperEps,
                      std::vector<VertexId>{e1.u}, nullptr);
  EXPECT_NEAR(state.p[0], 0.578125, 1e-12);
  EXPECT_NEAR(state.r[0], 0.0, 1e-12);
  EXPECT_NEAR(state.r[1], 0.078125, 1e-12);  // Figure 1(d): 0.0781
  EXPECT_NEAR(state.r[2], 0.0390625, 1e-12); // Figure 1(d): 0.039
  EXPECT_NEAR(state.r[3], 0.0625, 1e-12);
  EXPECT_NEAR(state.p[1], 0.25, 1e-12);
  EXPECT_NEAR(state.p[2], 0.1875, 1e-12);
  EXPECT_NEAR(state.p[3], 0.0625, 1e-12);
}

TEST(SeqPushTest, ConvergedStateRespectsEps) {
  auto edges = GenerateRmat({.scale = 9, .avg_degree = 8, .seed = 21});
  DynamicGraph g = DynamicGraph::FromEdges(edges, 1 << 9);
  PprState state(5, g.NumVertices());
  state.ResetToUnitResidual();
  SequentialLocalPush(g, &state, 0.15, 1e-5, std::vector<VertexId>{5},
                      nullptr);
  EXPECT_LE(state.MaxAbsResidual(), 1e-5);
}

TEST(SeqPushTest, NegativePhaseDrainsNegativeResiduals) {
  DynamicGraph g = CycleGraph(6);
  PprState state(0, 6);
  state.ResetToUnitResidual();
  SequentialLocalPush(g, &state, 0.15, 1e-7, std::vector<VertexId>{0},
                      nullptr);
  // Delete an edge and insert another: deletions inject negative residual.
  const EdgeUpdate del = EdgeUpdate::Delete(4, 5);
  const EdgeUpdate ins = EdgeUpdate::Insert(4, 0);
  g.Apply(del);
  RestoreInvariant(g, &state, del, 0.15);
  g.Apply(ins);
  RestoreInvariant(g, &state, ins, 0.15);
  SequentialLocalPush(g, &state, 0.15, 1e-7,
                      std::vector<VertexId>{4, 4}, nullptr);
  EXPECT_LE(state.MaxAbsResidual(), 1e-7);
  // And the result still eps-matches the oracle on the new graph.
  PowerIterationOptions opt;
  opt.alpha = 0.15;
  auto truth = PowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(state.p, truth), 1e-7 + 1e-10);
}

// ---------------------------------------------------------------- facade

TEST(DynamicPprSeqTest, InitializeMatchesOracle) {
  auto edges = GenerateErdosRenyi(256, 1500, 4);
  DynamicGraph g = DynamicGraph::FromEdges(edges, 256);
  PprOptions options;
  options.alpha = 0.15;
  options.eps = 1e-6;
  options.variant = PushVariant::kSequential;
  DynamicPpr ppr(&g, 7, options);
  ppr.Initialize();
  PowerIterationOptions oracle_opt;
  oracle_opt.alpha = 0.15;
  auto truth = PowerIterationPpr(g, 7, oracle_opt);
  EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), 1e-6 + 1e-9);
  EXPECT_LE(ppr.state().MaxAbsResidual(), 1e-6);
}

TEST(DynamicPprSeqTest, BatchMaintenanceTracksOracle) {
  auto edges = GenerateRmat({.scale = 8, .avg_degree = 6, .seed = 31});
  EdgeStream stream = EdgeStream::RandomPermutation(edges, 8);
  SlidingWindow window(&stream, 0.3);
  DynamicGraph g = DynamicGraph::FromEdges(window.InitialEdges(),
                                           stream.NumVertices());
  PprOptions options;
  options.alpha = 0.2;
  options.eps = 1e-6;
  options.variant = PushVariant::kSequential;
  DynamicPpr ppr(&g, 3, options);
  ppr.Initialize();

  PowerIterationOptions oracle_opt;
  oracle_opt.alpha = 0.2;
  for (int slide = 0; slide < 6 && window.CanSlide(40); ++slide) {
    ppr.ApplyBatch(window.NextBatch(40));
    auto truth = PowerIterationPpr(g, 3, oracle_opt);
    ASSERT_LE(MaxAbsError(ppr.Estimates(), truth), 1e-6 + 1e-9)
        << "slide " << slide;
    ASSERT_LE(ppr.state().MaxAbsResidual(), 1e-6);
  }
}

TEST(DynamicPprSeqTest, SingleUpdateModeMatchesBatchMode) {
  auto edges = GenerateErdosRenyi(128, 700, 6);
  EdgeStream stream = EdgeStream::RandomPermutation(edges, 2);
  SlidingWindow window_a(&stream, 0.5);
  SlidingWindow window_b(&stream, 0.5);

  DynamicGraph ga = DynamicGraph::FromEdges(window_a.InitialEdges(), 128);
  DynamicGraph gb = DynamicGraph::FromEdges(window_b.InitialEdges(), 128);
  PprOptions options;
  options.variant = PushVariant::kSequential;
  options.eps = 1e-7;
  DynamicPpr batch_ppr(&ga, 0, options);
  DynamicPpr single_ppr(&gb, 0, options);
  batch_ppr.Initialize();
  single_ppr.Initialize();

  auto batch = window_a.NextBatch(25);
  (void)window_b.NextBatch(25);
  batch_ppr.ApplyBatch(batch);
  single_ppr.ApplySingleUpdates(batch);

  // Both are eps-approximations of the same truth: within 2*eps of each
  // other (they need not be identical).
  EXPECT_LE(MaxAbsError(batch_ppr.Estimates(), single_ppr.Estimates()),
            2 * options.eps);
}

TEST(DynamicPprSeqTest, StatsArePopulated) {
  DynamicGraph g = PaperExampleGraph();
  PprOptions options;
  options.alpha = kPaperAlpha;
  options.eps = kPaperEps;
  options.variant = PushVariant::kSequential;
  DynamicPpr ppr(&g, 0, options);
  ppr.Initialize();
  EXPECT_EQ(ppr.last_stats().counters.push_ops, 4);  // Figure 3(b)
  UpdateBatch batch = {PaperExampleInsertE1(), PaperExampleInsertE2()};
  ppr.ApplyBatch(batch);
  EXPECT_EQ(ppr.last_stats().counters.restore_ops, 2);
  EXPECT_GT(ppr.last_stats().total_residual_change, 0.0);
}

// Property sweep: graph family x alpha x eps — from-scratch sequential
// push is always an eps-approximation of the oracle and leaves the
// invariant intact everywhere.
using SweepParam = std::tuple<int /*graph kind*/, double /*alpha*/,
                              double /*eps*/>;

class SeqPushSweepTest : public testing::TestWithParam<SweepParam> {
 protected:
  static DynamicGraph MakeGraph(int kind) {
    switch (kind) {
      case 0:
        return CycleGraph(64);
      case 1:
        return PathGraph(64);
      case 2:
        return StarGraph(64);
      case 3:
        return CompleteGraph(16);
      case 4:
        return DynamicGraph::FromEdges(GenerateErdosRenyi(128, 640, 17),
                                       128);
      default:
        return DynamicGraph::FromEdges(
            GenerateRmat({.scale = 7, .avg_degree = 5, .seed = 23}),
            1 << 7);
    }
  }
};

TEST_P(SeqPushSweepTest, ScratchComputationIsEpsAccurate) {
  const auto [kind, alpha, eps] = GetParam();
  DynamicGraph g = MakeGraph(kind);
  const VertexId s = 1;
  PprState state(s, g.NumVertices());
  state.ResetToUnitResidual();
  SequentialLocalPush(g, &state, alpha, eps, std::vector<VertexId>{s},
                      nullptr);
  EXPECT_LE(state.MaxAbsResidual(), eps);
  PowerIterationOptions opt;
  opt.alpha = alpha;
  auto truth = PowerIterationPpr(g, s, opt);
  EXPECT_LE(MaxAbsError(state.p, truth), eps * 1.0001);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_NEAR(InvariantDefect(g, s, v, alpha, state.p, state.r), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphAlphaEps, SeqPushSweepTest,
    testing::Combine(testing::Values(0, 1, 2, 3, 4, 5),
                     testing::Values(0.1, 0.15, 0.5, 0.85),
                     testing::Values(1e-3, 1e-5, 1e-7)));

}  // namespace
}  // namespace dppr
