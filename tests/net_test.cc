// Network transport tests (ctest label: net).
//
// Four layers, from bytes to processes:
//   1. Codec — frame headers and payload codecs round-trip, and every
//      decoder refuses truncation, corruption, and hostile length
//      prefixes (fuzz-ish sweeps) WITHOUT allocating for a lie.
//   2. Loopback — a PprServer over a live PprService answers exactly
//      like direct calls into the same service (same epochs, same bits:
//      it IS the same snapshot), and survives malformed peers.
//   3. Router — a ShardedPprService with a remote shard agrees with the
//      PR 3 unsharded oracle under lockstep updates/queries/churn,
//      including an over-the-wire join migration at unchanged epochs;
//      killing the remote shard surfaces kUnavailable, never a hang.
//   4. Fleet — real processes: hub_server --listen shards driven by a
//      hub_server --join router, and a replica group whose PRIMARY
//      PROCESS is SIGKILLed mid-query-storm — every source must stay
//      readable through the promoted standby, with no epoch regression
//      (skipped where the example binary is not built, e.g. the TSan
//      job).
//
// Every server binds port 0 (kernel-assigned), so parallel ctest workers
// never collide.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_validation.h"
#include "core/serialization.h"
#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "net/ppr_server.h"
#include "net/remote_client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "router/migration.h"
#include "router/sharded_service.h"
#include "server/ppr_service.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"

namespace dppr {
namespace {

using net::FrameHeader;
using net::Verb;

// ------------------------------------------------------------ wire codec

TEST(NetWireTest, PrimitivesAreLittleEndianByConstruction) {
  std::string out;
  blob::PutU32(&out, 0x01020304u);
  blob::PutU16(&out, 0xA1B2u);
  blob::PutU64(&out, 0x1122334455667788ull);
  const unsigned char expected[] = {0x04, 0x03, 0x02, 0x01,  // u32
                                    0xB2, 0xA1,              // u16
                                    0x88, 0x77, 0x66, 0x55, 0x44,
                                    0x33, 0x22, 0x11};
  ASSERT_EQ(out.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(out[i]), expected[i]) << i;
  }

  blob::Reader reader{out};
  uint32_t u32 = 0;
  uint16_t u16 = 0;
  uint64_t u64 = 0;
  EXPECT_TRUE(reader.U32(&u32));
  EXPECT_TRUE(reader.U16(&u16));
  EXPECT_TRUE(reader.U64(&u64));
  EXPECT_EQ(u32, 0x01020304u);
  EXPECT_EQ(u16, 0xA1B2u);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_EQ(reader.Remaining(), 0u);
}

TEST(NetWireTest, FrameHeaderRoundTrip) {
  FrameHeader header;
  header.verb = Verb::kTopK;
  header.flags = net::kFlagResponse;
  header.request_id = 0xDEADBEEFCAFEull;
  header.payload_bytes = 12345;
  std::string encoded;
  net::EncodeFrameHeader(header, &encoded);
  ASSERT_EQ(encoded.size(), net::kFrameHeaderBytes);

  FrameHeader decoded;
  ASSERT_TRUE(net::DecodeFrameHeader(encoded.data(),
                                     net::kDefaultMaxFramePayload, &decoded)
                  .ok());
  EXPECT_EQ(decoded.verb, header.verb);
  EXPECT_TRUE(decoded.IsResponse());
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.payload_bytes, header.payload_bytes);
}

TEST(NetWireTest, FrameHeaderRejectsHostileInput) {
  FrameHeader header;
  header.verb = Verb::kQueryVertex;
  header.payload_bytes = 100;
  std::string encoded;
  net::EncodeFrameHeader(header, &encoded);

  FrameHeader decoded;
  // Oversized length prefix: the 100-byte claim must be refused under a
  // 64-byte limit BEFORE anyone allocates 100 bytes.
  EXPECT_TRUE(net::DecodeFrameHeader(encoded.data(), 64, &decoded)
                  .IsCorruption());
  // A length prefix near u32 max must be refused by the default limit.
  std::string bomb;
  net::EncodeFrameHeader(header, &bomb);
  bomb.resize(net::kFrameHeaderBytes);
  for (size_t i = net::kFrameHeaderBytes - 4; i < net::kFrameHeaderBytes;
       ++i) {
    bomb[i] = static_cast<char>(0xFF);
  }
  EXPECT_TRUE(net::DecodeFrameHeader(bomb.data(),
                                     net::kDefaultMaxFramePayload, &decoded)
                  .IsCorruption());
  // Bad magic.
  std::string garbled = encoded;
  garbled[0] = 'X';
  EXPECT_TRUE(net::DecodeFrameHeader(garbled.data(),
                                     net::kDefaultMaxFramePayload, &decoded)
                  .IsCorruption());
  // Unknown verb.
  std::string bad_verb = encoded;
  bad_verb[5] = static_cast<char>(200);
  EXPECT_TRUE(net::DecodeFrameHeader(bad_verb.data(),
                                     net::kDefaultMaxFramePayload, &decoded)
                  .IsCorruption());
  // Unknown version.
  std::string bad_version = encoded;
  bad_version[4] = 9;
  EXPECT_TRUE(net::DecodeFrameHeader(bad_version.data(),
                                     net::kDefaultMaxFramePayload, &decoded)
                  .IsCorruption());
}

TEST(NetWireTest, RequestCodecsRoundTrip) {
  {
    net::QueryVertexRequest in{7, 42, 250};
    std::string payload;
    net::EncodeQueryVertexRequest(in, &payload);
    net::QueryVertexRequest out;
    ASSERT_TRUE(net::DecodeQueryVertexRequest(payload, &out).ok());
    EXPECT_EQ(out.source, 7);
    EXPECT_EQ(out.vertex, 42);
    EXPECT_EQ(out.deadline_ms, 250);
  }
  {
    net::MultiSourceRequest in;
    in.sources = {3, 1, 4, 1, 5};
    in.vertex = 9;
    in.deadline_ms = 0;
    std::string payload;
    net::EncodeMultiSourceRequest(in, &payload);
    net::MultiSourceRequest out;
    ASSERT_TRUE(net::DecodeMultiSourceRequest(payload, &out).ok());
    EXPECT_EQ(out.sources, in.sources);
    EXPECT_EQ(out.vertex, 9);
  }
  {
    UpdateBatch in = {EdgeUpdate::Insert(1, 2), EdgeUpdate::Delete(3, 4)};
    std::string payload;
    net::EncodeUpdateBatch(in, &payload);
    UpdateBatch out;
    ASSERT_TRUE(net::DecodeUpdateBatch(payload, &out).ok());
    EXPECT_EQ(out, in);
  }
}

TEST(NetWireTest, QueryResponseCodecRoundTrip) {
  QueryResponse in;
  in.status = RequestStatus::kOk;
  in.epoch = 17;
  in.during_maintenance = true;
  in.estimate = {0.25, 0.2, 0.3};
  in.topk.entries = {{5, 0.5}, {2, 0.25}, {9, 0.125}};
  in.topk.certain_members = 2;
  std::string payload;
  net::EncodeQueryResponse(in, &payload);
  QueryResponse out;
  ASSERT_TRUE(net::DecodeQueryResponsePayload(payload, &out).ok());
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.during_maintenance, in.during_maintenance);
  EXPECT_EQ(out.estimate.value, in.estimate.value);
  EXPECT_EQ(out.topk.entries, in.topk.entries);
  EXPECT_EQ(out.topk.certain_members, 2);
}

TEST(NetWireTest, DecodersRefuseTruncationEverywhere) {
  // Fuzz-ish: every strict prefix of a valid encoding must be refused
  // (never crash, never succeed) by the matching decoder.
  QueryResponse response;
  response.status = RequestStatus::kOk;
  response.epoch = 3;
  response.estimate = {0.5, 0.4, 0.6};
  response.topk.entries = {{1, 0.5}, {2, 0.25}};
  response.topk.certain_members = 1;
  std::string query_payload;
  net::EncodeQueryResponse(response, &query_payload);
  for (size_t cut = 0; cut < query_payload.size(); ++cut) {
    QueryResponse out;
    EXPECT_FALSE(net::DecodeQueryResponsePayload(
                     query_payload.substr(0, cut), &out)
                     .ok())
        << "prefix " << cut;
  }

  UpdateBatch batch = {EdgeUpdate::Insert(1, 2), EdgeUpdate::Delete(3, 4)};
  std::string batch_payload;
  net::EncodeUpdateBatch(batch, &batch_payload);
  for (size_t cut = 0; cut < batch_payload.size(); ++cut) {
    UpdateBatch out;
    EXPECT_FALSE(
        net::DecodeUpdateBatch(batch_payload.substr(0, cut), &out).ok())
        << "prefix " << cut;
  }

  net::ShardStats stats;
  stats.num_vertices = 100;
  stats.num_sources = 4;
  stats.max_epoch = 42;
  stats.running = 1;
  stats.report.queries_completed = 12;
  stats.query_latency_samples = {0.5, 1.5};
  stats.batch_latency_samples = {2.5};
  std::string stats_payload;
  net::EncodeShardStats(stats, &stats_payload);
  for (size_t cut = 0; cut < stats_payload.size(); ++cut) {
    net::ShardStats out;
    EXPECT_FALSE(
        net::DecodeShardStats(stats_payload.substr(0, cut), &out).ok())
        << "prefix " << cut;
  }
  net::ShardStats full;
  ASSERT_TRUE(net::DecodeShardStats(stats_payload, &full).ok());
  EXPECT_EQ(full.max_epoch, 42u);
}

TEST(NetWireTest, CountPrefixBombsAreRefusedWithoutAllocating) {
  // A source list claiming 500M entries in a 12-byte payload: the
  // decoder must refuse on arithmetic, not die reserving 2 GB.
  std::string bomb;
  blob::PutU32(&bomb, 500'000'000u);
  blob::PutI32(&bomb, 1);
  blob::PutI32(&bomb, 2);
  std::vector<VertexId> sources;
  EXPECT_TRUE(net::DecodeSourceList(bomb, &sources).IsCorruption());

  std::string update_bomb;
  blob::PutU32(&update_bomb, 400'000'000u);
  UpdateBatch batch;
  EXPECT_TRUE(net::DecodeUpdateBatch(update_bomb, &batch).IsCorruption());

  std::string multi_bomb;
  blob::PutU8(&multi_bomb, 0);  // overall status kOk
  blob::PutU32(&multi_bomb, 300'000'000u);
  RequestStatus overall = RequestStatus::kOk;
  std::vector<QueryResponse> responses;
  EXPECT_TRUE(net::DecodeMultiSourceResponse(multi_bomb, &overall,
                                             &responses)
                  .IsCorruption());
}

// -------------------------------------------- serialization hardening

TEST(SerializationHardeningTest, CheckpointBytesAreEndianExplicit) {
  PprState state;
  state.source = 1;
  state.p = {0.25, 0.5, 0.125};
  state.r = {0.0, 1.0, 0.0};
  std::string blob;
  ASSERT_TRUE(SerializePprState(state, &blob).ok());
  // Magic 'DPPR' (0x44505052) little-endian: bytes R P P D.
  ASSERT_GE(blob.size(), 4u);
  EXPECT_EQ(blob[0], 'R');
  EXPECT_EQ(blob[1], 'P');
  EXPECT_EQ(blob[2], 'P');
  EXPECT_EQ(blob[3], 'D');
  // 0.25 as an IEEE double, little-endian, lives at offset 20
  // (magic 4 + version 4 + source 4 + n 8).
  const unsigned char quarter[] = {0, 0, 0, 0, 0, 0, 0xD0, 0x3F};
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(blob[20 + i]), quarter[i]) << i;
  }
}

TEST(SerializationHardeningTest, HostileLengthPrefixCannotOom) {
  PprState state;
  state.source = 0;
  state.p = {0.5, 0.5};
  state.r = {0.0, 0.0};
  std::string blob;
  ASSERT_TRUE(SerializePprState(state, &blob).ok());

  // Bump the vertex count to ~2^62 while leaving the payload tiny: the
  // decoder must refuse before allocating. n sits at offset 12.
  std::string bomb = blob;
  bomb[18] = static_cast<char>(0xFF);  // high bytes of n
  bomb[17] = static_cast<char>(0xFF);
  PprState out;
  EXPECT_TRUE(DeserializePprState(bomb, &out).IsCorruption());
}

TEST(SerializationHardeningTest, FuzzedCorruptionsNeverDecode) {
  PprState state;
  state.source = 3;
  state.p.assign(64, 0.0);
  state.r.assign(64, 0.0);
  state.p[3] = 1.0;
  for (size_t i = 0; i < 64; ++i) state.r[i] = 1.0 / (1.0 + double(i));
  std::string blob;
  ASSERT_TRUE(SerializePprState(state, &blob).ok());

  std::mt19937 rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = blob;
    // Flip one random bit, or truncate at a random point.
    if (trial % 2 == 0) {
      const size_t byte = rng() % mutated.size();
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << (rng() % 8)));
      PprState out;
      EXPECT_FALSE(DeserializePprState(mutated, &out).ok())
          << "bit flip in byte " << byte;
    } else {
      const size_t cut = rng() % mutated.size();
      PprState out;
      EXPECT_FALSE(
          DeserializePprState(mutated.substr(0, cut), &out).ok())
          << "truncated to " << cut;
    }
  }

  // Migration blobs inherit the same discipline.
  ExportedSource src;
  src.source = 3;
  src.epoch = 5;
  src.materialized = true;
  src.state = state;
  std::string migration;
  ASSERT_TRUE(EncodeMigrationBlob(src, &migration).ok());
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = migration;
    const size_t byte = rng() % mutated.size();
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << (rng() % 8)));
    ExportedSource out;
    EXPECT_FALSE(DecodeMigrationBlob(mutated, &out).ok())
        << "bit flip in byte " << byte;
  }
}

// --------------------------------------------------- loopback server

/// One in-process "remote shard": graph + index + service + server.
struct ShardProcess {
  DynamicGraph graph;
  PprIndex index;
  PprService service;
  net::PprServer server;

  ShardProcess(const std::vector<Edge>& edges, VertexId num_vertices,
               std::vector<VertexId> sources, const IndexOptions& iopt,
               const ServiceOptions& sopt)
      : graph(DynamicGraph::FromEdges(edges, num_vertices)),
        index(&graph, std::move(sources), iopt),
        service(&index, sopt),
        server(&service, net::PprServerOptions{}) {
    index.Initialize();
    service.Start();
    const Status st = server.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  ~ShardProcess() {
    server.Stop();
    service.Stop();
  }
};

TEST(PprServerTest, LoopbackMatchesDirectServiceCalls) {
  auto edges = GenerateErdosRenyi(128, 1024, 11);
  IndexOptions iopt;
  iopt.ppr.eps = 1e-6;
  ServiceOptions sopt;
  sopt.num_workers = 2;
  ShardProcess shard(edges, 128, {1, 2, 3}, iopt, sopt);

  net::RemoteShardClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", shard.server.port()).ok());

  // Lockstep: with no concurrent maintenance, the remote answer and the
  // direct answer read the same snapshot — equality is exact, bit for
  // bit, epoch for epoch.
  std::mt19937 rng(99);
  for (int step = 0; step < 60; ++step) {
    const VertexId s = 1 + static_cast<VertexId>(rng() % 3);
    const VertexId v = static_cast<VertexId>(rng() % 128);
    if (step % 10 == 9) {
      UpdateBatch batch;
      batch.push_back(EdgeUpdate::Insert(
          static_cast<VertexId>(rng() % 128),
          static_cast<VertexId>(rng() % 128)));
      const MaintResponse remote =
          client.ApplyUpdatesAsync(batch).get();
      EXPECT_EQ(remote.status, RequestStatus::kOk);
      EXPECT_EQ(remote.updates_applied, 1);
    } else if (step % 3 == 0) {
      const QueryResponse remote = client.TopKAsync(s, 5, 0).get();
      const QueryResponse direct = shard.service.TopK(s, 5);
      ASSERT_EQ(remote.status, direct.status);
      EXPECT_EQ(remote.epoch, direct.epoch);
      ASSERT_EQ(remote.topk.entries.size(), direct.topk.entries.size());
      for (size_t e = 0; e < direct.topk.entries.size(); ++e) {
        EXPECT_EQ(remote.topk.entries[e].id, direct.topk.entries[e].id);
        EXPECT_EQ(remote.topk.entries[e].score,
                  direct.topk.entries[e].score);
      }
      EXPECT_EQ(remote.topk.certain_members, direct.topk.certain_members);
    } else {
      const QueryResponse remote = client.QueryVertexAsync(s, v, 0).get();
      const QueryResponse direct = shard.service.Query(s, v);
      ASSERT_EQ(remote.status, direct.status);
      EXPECT_EQ(remote.epoch, direct.epoch);
      EXPECT_EQ(remote.estimate.value, direct.estimate.value);
      EXPECT_EQ(remote.estimate.lower, direct.estimate.lower);
      EXPECT_EQ(remote.estimate.upper, direct.estimate.upper);
    }
  }

  // Multi-source: one round trip, per-source answers match direct reads.
  auto multi = client.MultiSourceAsync({1, 2, 3, 77}, 5, 0).get();
  ASSERT_EQ(multi.size(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    const QueryResponse direct =
        shard.service.Query(static_cast<VertexId>(i + 1), 5);
    EXPECT_EQ(multi[i].status, direct.status);
    EXPECT_EQ(multi[i].estimate.value, direct.estimate.value);
  }
  EXPECT_EQ(multi[3].status, RequestStatus::kUnknownSource);

  // Source admin + introspection over the wire.
  EXPECT_EQ(client.AddSourceAsync(9).get().status, RequestStatus::kOk);
  EXPECT_EQ(client.AddSourceAsync(9).get().status,
            RequestStatus::kRejected);
  EXPECT_EQ(client.RemoveSourceAsync(2).get().status, RequestStatus::kOk);
  std::vector<VertexId> sources;
  ASSERT_TRUE(client.ListSources(&sources).ok());
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(sources, (std::vector<VertexId>{1, 3, 9}));

  net::ShardStats stats;
  ASSERT_TRUE(client.Stats(true, &stats).ok());
  EXPECT_EQ(stats.num_vertices, 128u);
  EXPECT_EQ(stats.num_sources, 3u);
  EXPECT_GE(stats.max_epoch, 1u)
      << "the v2 feed-frontier field must survive the wire";
  EXPECT_EQ(stats.running, 1);
  EXPECT_GT(stats.report.queries_completed, 0);
  EXPECT_EQ(stats.query_latency_samples.size(),
            static_cast<size_t>(stats.report.queries_completed));
  EXPECT_EQ(shard.server.protocol_errors(), 0);
}

TEST(PprServerTest, QuiesceExtractInjectRoundTripOverTheWire) {
  auto edges = GenerateErdosRenyi(96, 700, 5);
  IndexOptions iopt;
  iopt.ppr.eps = 1e-6;
  ServiceOptions sopt;
  sopt.num_workers = 1;
  ShardProcess a(edges, 96, {4, 5}, iopt, sopt);
  ShardProcess b(edges, 96, {}, iopt, sopt);

  net::RemoteShardClient ca;
  net::RemoteShardClient cb;
  ASSERT_TRUE(ca.Connect("127.0.0.1", a.server.port()).ok());
  ASSERT_TRUE(cb.Connect("127.0.0.1", b.server.port()).ok());

  ASSERT_EQ(ca.QuiesceAsync().get().status, RequestStatus::kOk);
  const uint64_t epoch_before = ca.QueryVertexAsync(4, 4, 0).get().epoch;

  // Lift source 4 out of A, ship the blob into B: the same bytes, the
  // same epoch, no recomputation on arrival.
  std::string blob;
  ASSERT_EQ(ca.ExtractBlob(4, &blob).status, RequestStatus::kOk);
  EXPECT_FALSE(blob.empty());
  EXPECT_EQ(ca.QueryVertexAsync(4, 4, 0).get().status,
            RequestStatus::kUnknownSource);
  ASSERT_EQ(cb.InjectBlob(blob).status, RequestStatus::kOk);
  const QueryResponse moved = cb.QueryVertexAsync(4, 4, 0).get();
  EXPECT_EQ(moved.status, RequestStatus::kOk);
  EXPECT_EQ(moved.epoch, epoch_before);

  // A corrupted blob is refused by the receiving side.
  std::string corrupted = blob;
  corrupted[corrupted.size() / 2] ^= 0x10;
  EXPECT_EQ(cb.InjectBlob(corrupted).status, RequestStatus::kRejected);
  // Extracting a source the shard does not own.
  std::string none;
  EXPECT_EQ(ca.ExtractBlob(4, &none).status,
            RequestStatus::kUnknownSource);
}

TEST(PprServerTest, MalformedPeersAreContainedAndCounted) {
  auto edges = GenerateErdosRenyi(64, 400, 3);
  IndexOptions iopt;
  iopt.ppr.eps = 1e-5;
  ServiceOptions sopt;
  sopt.num_workers = 1;
  ShardProcess shard(edges, 64, {1}, iopt, sopt);

  {
    // Pure garbage: bad magic poisons the connection; the server closes
    // it without serving anything.
    net::ScopedFd raw;
    ASSERT_TRUE(net::TcpConnect("127.0.0.1", shard.server.port(), &raw).ok());
    const std::string garbage(64, 'x');
    ASSERT_TRUE(net::WriteFully(raw.get(), garbage.data(), garbage.size())
                    .ok());
    char byte = 0;
    // EOF (IOError) — never a response frame.
    EXPECT_FALSE(net::ReadFully(raw.get(), &byte, 1).ok());
  }
  {
    // Oversized length prefix: refused at the header, connection dropped,
    // no multi-gigabyte allocation (ASan would notice the attempt).
    net::ScopedFd raw;
    ASSERT_TRUE(net::TcpConnect("127.0.0.1", shard.server.port(), &raw).ok());
    FrameHeader bomb;
    bomb.verb = Verb::kApplyUpdates;
    bomb.request_id = 1;
    bomb.payload_bytes = 0xFFFFFFF0u;
    std::string frame;
    net::EncodeFrameHeader(bomb, &frame);
    ASSERT_TRUE(net::WriteFully(raw.get(), frame.data(), frame.size()).ok());
    char byte = 0;
    EXPECT_FALSE(net::ReadFully(raw.get(), &byte, 1).ok());
  }
  {
    // Valid framing, garbage payload: answered kRejected, connection
    // SURVIVES and serves a well-formed request afterwards.
    net::RemoteShardClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", shard.server.port()).ok());
    // (Reach the payload decoder through a raw frame with a bad op byte.)
    net::ScopedFd raw;
    ASSERT_TRUE(net::TcpConnect("127.0.0.1", shard.server.port(), &raw).ok());
    std::string payload;
    blob::PutU32(&payload, 1);
    blob::PutI32(&payload, 1);
    blob::PutI32(&payload, 2);
    blob::PutU8(&payload, 7);  // op must be 0/1
    FrameHeader header;
    header.verb = Verb::kApplyUpdates;
    header.request_id = 5;
    header.payload_bytes = static_cast<uint32_t>(payload.size());
    std::string frame;
    net::EncodeFrameHeader(header, &frame);
    frame += payload;
    ASSERT_TRUE(net::WriteFully(raw.get(), frame.data(), frame.size()).ok());
    std::string response(net::kFrameHeaderBytes + 9, '\0');
    ASSERT_TRUE(
        net::ReadFully(raw.get(), response.data(), response.size()).ok());
    FrameHeader response_header;
    ASSERT_TRUE(net::DecodeFrameHeader(response.data(),
                                       net::kDefaultMaxFramePayload,
                                       &response_header)
                    .ok());
    EXPECT_EQ(response_header.request_id, 5u);
    MaintResponse maint;
    ASSERT_TRUE(net::DecodeMaintResponse(
                    response.substr(net::kFrameHeaderBytes), &maint)
                    .ok());
    EXPECT_EQ(maint.status, RequestStatus::kRejected);

    // The multiplexed client on the same server still works.
    EXPECT_EQ(client.QueryVertexAsync(1, 1, 0).get().status,
              RequestStatus::kOk);
  }
  EXPECT_GT(shard.server.protocol_errors(), 0);
}

// --------------------------------------------- router with remote shard

TEST(RemoteShardTest, RouterWithRemoteShardMatchesUnshardedOracle) {
  constexpr double kEps = 1e-6;
  auto edges = GenerateErdosRenyi(128, 1024, 29);
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 30);
  SlidingWindow window(&stream, 0.5);
  const std::vector<Edge> initial = window.InitialEdges();
  const VertexId num_vertices = stream.NumVertices();
  const EdgeCount batch_size = window.BatchForRatio(0.01);
  std::vector<UpdateBatch> batches;
  while (static_cast<int>(batches.size()) < 10 &&
         window.CanSlide(batch_size)) {
    batches.push_back(window.NextBatch(batch_size));
  }
  DynamicGraph ranking = DynamicGraph::FromEdges(initial, num_vertices);
  std::vector<VertexId> hubs = TopOutDegreeVertices(ranking, 6);

  IndexOptions iopt;
  iopt.ppr.eps = kEps;
  ServiceOptions sopt;
  sopt.num_workers = 2;

  // The PR 3 oracle: one unsharded serving stack.
  DynamicGraph ref_graph =
      DynamicGraph::FromEdges(initial, num_vertices);
  PprIndex ref_index(&ref_graph, hubs, iopt);
  ref_index.Initialize();
  PprService reference(&ref_index, sopt);
  reference.Start();

  // The subject: a router with one local shard (all hubs) joined by one
  // EMPTY remote shard — the join itself migrates ~half the hubs over
  // the wire at unchanged epochs.
  ShardProcess remote(initial, num_vertices, {}, iopt, sopt);
  ShardedServiceOptions ropt;
  ropt.num_shards = 1;
  ropt.vnodes_per_shard = 32;
  ropt.index = iopt;
  ropt.service = sopt;
  ShardedPprService router(initial, num_vertices, hubs, ropt);
  router.Start();

  // Pre-join epochs, to prove the wire migration preserved them.
  std::vector<uint64_t> epochs_before;
  for (VertexId hub : hubs) {
    epochs_before.push_back(router.Query(hub, hub).epoch);
  }
  const int remote_id =
      router.AddRemoteShard("127.0.0.1", remote.server.port());
  ASSERT_GE(remote_id, 0);
  EXPECT_GT(router.SourcesOnShard(remote_id).size(), 0u)
      << "the join should rebalance some hubs onto the remote";
  EXPECT_EQ(router.NumSources(), hubs.size());
  for (size_t i = 0; i < hubs.size(); ++i) {
    const QueryResponse after = router.Query(hubs[i], hubs[i]);
    EXPECT_EQ(after.status, RequestStatus::kOk);
    EXPECT_EQ(after.epoch, epochs_before[i])
        << "hub " << hubs[i] << " must not change epoch by moving shards";
  }
  const RouterReport join_report = router.Report();
  EXPECT_GT(join_report.sources_migrated, 0);
  EXPECT_GT(join_report.migration_bytes, 0);

  // Lockstep updates/queries/churn against the oracle.
  VertexId churn = 0;
  while (std::find(hubs.begin(), hubs.end(), churn) != hubs.end()) {
    ++churn;
  }
  bool churn_present = false;
  std::mt19937 rng(4242);
  size_t next_batch = 0;
  for (int step = 0; step < 200; ++step) {
    const uint32_t dice = rng() % 100;
    const VertexId s = (churn_present && dice % 7 == 0)
                           ? churn
                           : hubs[rng() % hubs.size()];
    if (dice < 12 && next_batch < batches.size()) {
      const UpdateBatch& batch = batches[next_batch++];
      ASSERT_EQ(reference.ApplyUpdatesAsync(batch).get().status,
                RequestStatus::kOk);
      ASSERT_EQ(router.ApplyUpdates(batch).status, RequestStatus::kOk);
    } else if (dice < 17) {
      const RequestStatus expected =
          churn_present
              ? reference.RemoveSourceAsync(churn).get().status
              : reference.AddSourceAsync(churn).get().status;
      const RequestStatus got = churn_present
                                    ? router.RemoveSource(churn).status
                                    : router.AddSource(churn).status;
      ASSERT_EQ(expected, RequestStatus::kOk);
      EXPECT_EQ(got, expected);
      churn_present = !churn_present;
    } else if (dice < 32) {
      const QueryResponse expected = reference.TopK(s, 5);
      const QueryResponse got = router.TopK(s, 5);
      ASSERT_EQ(got.status, expected.status);
      if (expected.status != RequestStatus::kOk) continue;
      EXPECT_EQ(got.epoch, expected.epoch);
      ASSERT_EQ(got.topk.entries.size(), expected.topk.entries.size());
      for (size_t e = 0; e < expected.topk.entries.size(); ++e) {
        EXPECT_NEAR(got.topk.entries[e].score,
                    expected.topk.entries[e].score, 2 * kEps + 1e-12);
      }
    } else {
      const VertexId source = dice == 99 ? churn + 1000 : s;
      const VertexId v = static_cast<VertexId>(rng() % num_vertices);
      const QueryResponse expected = reference.Query(source, v);
      const QueryResponse got = router.Query(source, v);
      ASSERT_EQ(got.status, expected.status) << "source " << source;
      if (expected.status != RequestStatus::kOk) continue;
      EXPECT_EQ(got.epoch, expected.epoch);
      EXPECT_NEAR(got.estimate.value, expected.estimate.value,
                  2 * kEps + 1e-12);
    }
  }

  // Multi-source scatter-gather crosses the wire as ONE frame per shard.
  const std::vector<QueryResponse> multi =
      router.MultiSourceQuery(hubs, hubs[0]);
  ASSERT_EQ(multi.size(), hubs.size());
  for (size_t i = 0; i < hubs.size(); ++i) {
    const QueryResponse expected = reference.Query(hubs[i], hubs[0]);
    EXPECT_EQ(multi[i].status, expected.status);
    EXPECT_EQ(multi[i].epoch, expected.epoch);
    EXPECT_NEAR(multi[i].estimate.value, expected.estimate.value,
                2 * kEps + 1e-12);
  }

  // Cross-fleet metrics still merge (remote samples ship over the wire).
  const MetricsReport metrics = router.Metrics();
  EXPECT_GT(metrics.queries_completed, 0);
  EXPECT_GE(metrics.query_p99_ms, metrics.query_p50_ms);

  // Drain the remote shard back out of the fleet: its sources migrate
  // over the wire to the survivors, nothing is lost.
  ASSERT_TRUE(router.RemoveShard(remote_id));
  EXPECT_EQ(router.NumSources(),
            hubs.size() + (churn_present ? 1 : 0));
  for (VertexId hub : hubs) {
    EXPECT_EQ(router.Query(hub, hub).status, RequestStatus::kOk);
  }

  reference.Stop();
  router.Stop();
}

TEST(RemoteShardTest, KilledRemoteShardShedsCleanlyInsteadOfHanging) {
  auto edges = GenerateErdosRenyi(96, 700, 13);
  IndexOptions iopt;
  iopt.ppr.eps = 1e-5;
  ServiceOptions sopt;
  sopt.num_workers = 1;
  // Ring placement is deterministic; a wide hub set guarantees the
  // remote shard ends up owning some of them.
  std::vector<VertexId> hubs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};

  auto remote = std::make_unique<ShardProcess>(edges, 96,
                                               std::vector<VertexId>{},
                                               iopt, sopt);
  ShardedServiceOptions ropt;
  ropt.num_shards = 1;
  ropt.index = iopt;
  ropt.service = sopt;
  ShardedPprService router(edges, 96, hubs, ropt);
  router.Start();
  const int remote_id =
      router.AddRemoteShard("127.0.0.1", remote->server.port());
  ASSERT_GE(remote_id, 0);
  const std::vector<VertexId> remote_hubs =
      router.SourcesOnShard(remote_id);
  ASSERT_GT(remote_hubs.size(), 0u);

  // Kill the remote process stand-in (server + service die; the router's
  // connection breaks).
  remote.reset();

  // Every read routed to the dead shard surfaces kUnavailable — quickly,
  // not after a timeout, and never as a hang (the ctest TIMEOUT guards
  // the "never hangs" half of the claim).
  for (VertexId hub : remote_hubs) {
    EXPECT_EQ(router.Query(hub, hub).status, RequestStatus::kUnavailable);
    EXPECT_EQ(router.TopK(hub, 3).status, RequestStatus::kUnavailable);
  }
  // The update feed reports the divergence instead of retrying forever.
  UpdateBatch batch;
  batch.push_back(EdgeUpdate::Insert(7, 8));
  EXPECT_EQ(router.ApplyUpdates(batch).status,
            RequestStatus::kUnavailable);
  // Multi-source: dead-shard sources answer kUnavailable, live ones kOk.
  const std::vector<QueryResponse> multi =
      router.MultiSourceQuery(hubs, hubs[0]);
  int unavailable = 0;
  int ok = 0;
  for (const QueryResponse& response : multi) {
    if (response.status == RequestStatus::kUnavailable) ++unavailable;
    if (response.status == RequestStatus::kOk) ++ok;
  }
  EXPECT_EQ(unavailable, static_cast<int>(remote_hubs.size()));
  EXPECT_EQ(ok, static_cast<int>(hubs.size() - remote_hubs.size()));

  // Sources on live shards keep serving.
  for (VertexId hub : hubs) {
    if (std::find(remote_hubs.begin(), remote_hubs.end(), hub) ==
        remote_hubs.end()) {
      EXPECT_EQ(router.Query(hub, hub).status, RequestStatus::kOk);
    }
  }
  router.Stop();
}

// ----------------------------------------------------- process fleet

/// Spawns `binary` with `args`, its stdout on a pipe. Returns the pid or
/// -1.
pid_t Spawn(const std::string& binary, std::vector<std::string> args,
            int* stdout_fd) {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  ::close(fds[1]);
  *stdout_fd = fds[0];
  return pid;
}

/// Reads lines from `fd` until one starts with "LISTENING "; returns the
/// port, or -1 on EOF.
int AwaitListeningPort(int fd) {
  std::string buffer;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c != '\n') {
      buffer.push_back(c);
      continue;
    }
    if (buffer.rfind("LISTENING ", 0) == 0) {
      return std::atoi(buffer.c_str() + 10);
    }
    buffer.clear();
  }
  return -1;
}

TEST(NetFleetTest, MultiProcessFleetServesAndMigrates) {
  // The example binary lives next to the test binaries; absent (e.g. a
  // -DDPPR_BUILD_EXAMPLES=OFF sanitizer build) the fleet test has no
  // subject.
  const char* binary = "./hub_server";
  if (::access(binary, X_OK) != 0) {
    GTEST_SKIP() << "hub_server binary not built";
  }

  // Two shard processes on kernel-assigned ports.
  int out1 = -1;
  int out2 = -1;
  const pid_t shard1 =
      Spawn(binary, {"--listen=0", "--seed=33"}, &out1);
  const pid_t shard2 =
      Spawn(binary, {"--listen=0", "--seed=33"}, &out2);
  ASSERT_GT(shard1, 0);
  ASSERT_GT(shard2, 0);
  const int port1 = AwaitListeningPort(out1);
  const int port2 = AwaitListeningPort(out2);
  ASSERT_GT(port1, 0);
  ASSERT_GT(port2, 0);

  // The router process drives the full demo against them: local shard +
  // two remote joins (wire migration), streaming feed, concurrent
  // clients, hub churn, mid-run local growth, per-hub certified top-k.
  // Its exit code asserts: every hub served, churn applied across the
  // fleet, zero answers below the paper's alpha - eps bound.
  int router_out = -1;
  const std::string join_arg = "--join=127.0.0.1:" +
                               std::to_string(port1) + ",127.0.0.1:" +
                               std::to_string(port2);
  const pid_t router =
      Spawn(binary, {join_arg, "--seed=33", "--slides=8"}, &router_out);
  ASSERT_GT(router, 0);
  int router_status = -1;
  ASSERT_EQ(::waitpid(router, &router_status, 0), router);
  // Drain the router's output into the test log for post-mortems.
  std::string router_log;
  char buf[4096];
  ssize_t got = 0;
  while ((got = ::read(router_out, buf, sizeof(buf))) > 0) {
    router_log.append(buf, static_cast<size_t>(got));
  }
  EXPECT_TRUE(WIFEXITED(router_status) &&
              WEXITSTATUS(router_status) == 0)
      << router_log;
  EXPECT_NE(router_log.find("joined remote shard"), std::string::npos)
      << router_log;

  ::kill(shard1, SIGTERM);
  ::kill(shard2, SIGTERM);
  int ignored = 0;
  (void)::waitpid(shard1, &ignored, 0);
  (void)::waitpid(shard2, &ignored, 0);
  ::close(out1);
  ::close(out2);
  ::close(router_out);
}

TEST(NetFleetTest, SigkilledPrimaryFailsOverDuringQueryStorm) {
  const char* binary = "./hub_server";
  if (::access(binary, X_OK) != 0) {
    GTEST_SKIP() << "hub_server binary not built";
  }

  // The same graph replica hub_server --listen --seed=33 builds, and a
  // pre-validated slice of the same stream (its preflight recipe).
  DatasetSpec spec;
  ASSERT_TRUE(FindDataset("pokec", &spec).ok());
  auto edges = GenerateDataset(spec, /*scale_shift=*/1);
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 33);
  SlidingWindow window(&stream, 0.1);
  const std::vector<Edge> initial = window.InitialEdges();
  const VertexId num_vertices = stream.NumVertices();
  const EdgeCount batch_size = window.BatchForRatio(0.001);
  std::vector<UpdateBatch> batches;
  {
    DynamicGraph preflight = DynamicGraph::FromEdges(initial, num_vertices);
    for (int s = 0; s < 8 && window.CanSlide(batch_size); ++s) {
      UpdateBatch batch = window.NextBatch(batch_size);
      if (!ValidateBatch(preflight, batch).ok()) continue;
      for (const EdgeUpdate& update : batch) preflight.Apply(update);
      batches.push_back(std::move(batch));
    }
  }
  ASSERT_GE(batches.size(), 4u);

  // Two real shard processes: the replica group's primary and standby.
  int out_primary = -1;
  int out_standby = -1;
  const pid_t primary_pid =
      Spawn(binary, {"--listen=0", "--seed=33"}, &out_primary);
  const pid_t standby_pid =
      Spawn(binary, {"--listen=0", "--seed=33"}, &out_standby);
  ASSERT_GT(primary_pid, 0);
  ASSERT_GT(standby_pid, 0);
  const int primary_port = AwaitListeningPort(out_primary);
  const int standby_port = AwaitListeningPort(out_standby);
  ASSERT_GT(primary_port, 0);
  ASSERT_GT(standby_port, 0);

  // The router: one local slot plus the remote replica group. Options
  // match hub_server's fleet contract (one block for every process).
  DynamicGraph ranking = DynamicGraph::FromEdges(initial, num_vertices);
  std::vector<VertexId> hubs = TopOutDegreeVertices(ranking, 8);
  ShardedServiceOptions ropt;
  ropt.num_shards = 1;
  ropt.index.ppr.eps = 1e-7;
  ropt.service.num_workers = 3;
  ropt.service.materialize_wait = std::chrono::milliseconds(500);
  ShardedPprService router(initial, num_vertices, hubs, ropt);
  router.Start();
  const int slot = router.AddRemoteShard("127.0.0.1", primary_port);
  ASSERT_GE(slot, 0);
  const std::vector<VertexId> remote_hubs = router.SourcesOnShard(slot);
  ASSERT_GT(remote_hubs.size(), 0u)
      << "the join should rebalance some hubs onto the remote slot";
  ASSERT_GE(router.AddRemoteReplica(slot, "127.0.0.1", standby_port), 0);
  ASSERT_EQ(router.NumReplicas(slot), 2u);
  EXPECT_GT(router.Report().standby_syncs, 0)
      << "the standby must be synced over the wire at join";

  // The storm: 3 closed-loop clients over every hub, tracking that no
  // answer is EVER kUnavailable (failover is absorbed inside the
  // request) and per-hub epochs never regress.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> unavailable{0};
  std::atomic<int64_t> served{0};
  std::atomic<bool> epochs_monotonic{true};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(200 + static_cast<uint32_t>(c));
      std::vector<uint64_t> last_epoch(hubs.size(), 0);
      while (!stop.load(std::memory_order_acquire)) {
        const size_t i = rng() % hubs.size();
        const QueryResponse response = rng() % 4 == 0
                                           ? router.TopK(hubs[i], 3)
                                           : router.Query(hubs[i], hubs[i]);
        if (response.status == RequestStatus::kUnavailable) {
          unavailable.fetch_add(1);
        }
        if (response.status != RequestStatus::kOk) continue;
        served.fetch_add(1);
        if (response.epoch < last_epoch[i]) epochs_monotonic.store(false);
        last_epoch[i] = response.epoch;
      }
    });
  }

  // Feed the fleet; SIGKILL the primary PROCESS mid-storm. The standby
  // received every batch before the primary (the ordered fan-out), so
  // the promoted state can only be at or past anything a client saw.
  for (size_t b = 0; b < batches.size(); ++b) {
    ASSERT_EQ(router.ApplyUpdates(batches[b]).status, RequestStatus::kOk)
        << "batch " << b;
    if (b == batches.size() / 2) {
      ASSERT_EQ(::kill(primary_pid, SIGKILL), 0);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  EXPECT_EQ(unavailable.load(), 0)
      << "a SIGKILLed primary must never surface as kUnavailable";
  EXPECT_TRUE(epochs_monotonic.load()) << "an epoch regressed";
  EXPECT_GT(served.load(), 0);
  // Every source stays readable — including the dead primary's — and
  // the failover is on the books.
  for (VertexId hub : hubs) {
    EXPECT_EQ(router.Query(hub, hub).status, RequestStatus::kOk) << hub;
  }
  EXPECT_GE(router.Report().failovers, 1);
  router.Stop();

  int ignored = 0;
  (void)::waitpid(primary_pid, &ignored, 0);
  ::kill(standby_pid, SIGTERM);
  (void)::waitpid(standby_pid, &ignored, 0);
  ::close(out_primary);
  ::close(out_standby);
}

}  // namespace
}  // namespace dppr
