// Kernel-family tests (ctest label `kernels`; also in the ASan/TSan nets):
//  * KernelDispatch — runtime CPU dispatch plumbing: hardware probe,
//    env/option/test-override forcing, clean scalar fallback.
//  * KernelPrimitive — the three simdops primitives produce BIT-IDENTICAL
//    results at every SIMD level (the contract cpu_dispatch.h documents),
//    across run lengths covering every vector/tail split.
//  * KernelEquivalence — property tests: the adaptive and forced-dense
//    push kernels land within eps of the power-iteration oracle and
//    within 2*eps of PushIterationOpt, dense rounds actually fire, and
//    the scalar and SIMD engines agree bitwise.
//  * FrontierDense — the dense bitvector frontier mode's conversions.
//  * NumaTopology — cpulist parsing and ScopedNodeBinding's no-op and
//    restore guarantees.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "core/cpu_dispatch.h"
#include "core/dynamic_ppr.h"
#include "core/frontier.h"
#include "core/invariant.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/macros.h"
#include "util/numa.h"
#include "util/parallel.h"
#include "util/random.h"

namespace dppr {
namespace {

// libgomp's team barriers are invisible to TSan (the reason ci/run_tsan.sh
// pins OMP_NUM_THREADS=1): an OpenMP join would report false races between
// worker reads and post-join writes. Under TSan the equivalence tests run
// their teams at 1 thread; the regular and ASan jobs cover the parallel
// grains.
constexpr int kTeamThreads = DPPR_TSAN_BUILD ? 1 : 4;

// ------------------------------------------------------ KernelDispatch

class KernelDispatchTest : public testing::Test {
 protected:
  void TearDown() override {
    ClearSimdOverrideForTest();
    unsetenv("DPPR_FORCE_SCALAR_KERNELS");
  }
};

TEST_F(KernelDispatchTest, HardwareLevelIsStableAndNamed) {
  const SimdLevel hw = HardwareSimdLevel();
  EXPECT_EQ(hw, HardwareSimdLevel());  // cached probe
  EXPECT_STRNE(SimdLevelName(hw), "");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST_F(KernelDispatchTest, EnvVarForcesScalar) {
  setenv("DPPR_FORCE_SCALAR_KERNELS", "1", /*overwrite=*/1);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // "0" and absence both mean no forcing — back to hardware detection.
  setenv("DPPR_FORCE_SCALAR_KERNELS", "0", /*overwrite=*/1);
  EXPECT_EQ(ActiveSimdLevel(), HardwareSimdLevel());
  unsetenv("DPPR_FORCE_SCALAR_KERNELS");
  EXPECT_EQ(ActiveSimdLevel(), HardwareSimdLevel());
}

TEST_F(KernelDispatchTest, TestOverrideClampsToHardware) {
  SetSimdOverrideForTest(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  // Forcing a level the CPU lacks must degrade to scalar, never crash.
  SetSimdOverrideForTest(SimdLevel::kAvx2);
  EXPECT_EQ(ActiveSimdLevel(), HardwareSimdLevel());
  ClearSimdOverrideForTest();
  EXPECT_EQ(ActiveSimdLevel(), HardwareSimdLevel());
}

TEST_F(KernelDispatchTest, EnvBeatsTestOverride) {
  SetSimdOverrideForTest(SimdLevel::kAvx2);
  setenv("DPPR_FORCE_SCALAR_KERNELS", "1", /*overwrite=*/1);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

// ----------------------------------------------------- KernelPrimitive

// Every n in [0, 67] crosses the 4-lane vector/tail boundary somewhere;
// the primitives must agree bitwise at each split.
TEST(KernelPrimitiveTest, BitwiseAgreementAcrossLengths) {
  const SimdLevel hw = HardwareSimdLevel();
  if (hw == SimdLevel::kScalar) {
    GTEST_SKIP() << "no SIMD level to compare against on this machine";
  }
  Rng rng(4242);
  for (int64_t n = 0; n <= 67; ++n) {
    std::vector<double> r(static_cast<size_t>(n));
    std::vector<uint8_t> flags(static_cast<size_t>(n));
    std::vector<VertexId> idx(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      r[static_cast<size_t>(i)] =
          (static_cast<double>(rng.NextBounded(2000)) - 1000.0) * 1e-5;
      flags[static_cast<size_t>(i)] = rng.NextBounded(2) != 0 ? 1 : 0;
      idx[static_cast<size_t>(i)] =
          static_cast<VertexId>(rng.NextBounded(static_cast<uint64_t>(n)));
    }

    std::vector<double> w_scalar(static_cast<size_t>(n)),
        w_simd(static_cast<size_t>(n));
    simdops::BuildMaskedResiduals(SimdLevel::kScalar, flags.data(), r.data(),
                                  w_scalar.data(), n);
    simdops::BuildMaskedResiduals(hw, flags.data(), r.data(), w_simd.data(),
                                  n);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(w_scalar[static_cast<size_t>(i)],
                w_simd[static_cast<size_t>(i)])
          << "n=" << n << " i=" << i;
    }

    const double sum_scalar =
        simdops::GatherSum(SimdLevel::kScalar, w_scalar.data(), idx.data(), n);
    const double sum_simd =
        simdops::GatherSum(hw, w_scalar.data(), idx.data(), n);
    ASSERT_EQ(sum_scalar, sum_simd) << "GatherSum n=" << n;  // bitwise

    std::vector<double> p_scalar(static_cast<size_t>(n), 0.25),
        p_simd(static_cast<size_t>(n), 0.25);
    std::vector<double> r_scalar = r, r_simd = r;
    std::vector<uint8_t> next_scalar(static_cast<size_t>(n), 2),
        next_simd(static_cast<size_t>(n), 2);
    const int64_t c_scalar = simdops::SelfUpdateAndFlag(
        SimdLevel::kScalar, p_scalar.data(), r_scalar.data(), w_scalar.data(),
        0.15, 1e-4, /*positive_phase=*/true, next_scalar.data(), 0, n);
    const int64_t c_simd = simdops::SelfUpdateAndFlag(
        hw, p_simd.data(), r_simd.data(), w_scalar.data(), 0.15, 1e-4,
        /*positive_phase=*/true, next_simd.data(), 0, n);
    ASSERT_EQ(c_scalar, c_simd) << "flag count n=" << n;
    for (int64_t i = 0; i < n; ++i) {
      const auto s = static_cast<size_t>(i);
      ASSERT_EQ(p_scalar[s], p_simd[s]) << "p n=" << n << " i=" << i;
      ASSERT_EQ(r_scalar[s], r_simd[s]) << "r n=" << n << " i=" << i;
      ASSERT_EQ(next_scalar[s], next_simd[s]) << "flag n=" << n << " i=" << i;
    }
  }
}

TEST(KernelPrimitiveTest, SelfUpdateWritesEveryFlagAndCounts) {
  // The contract: flags are written for EVERY v in [lo, hi) — callers
  // never pre-clear the next dense frontier — and the return value is the
  // number set. Run at both phases and an interior [lo, hi) window.
  constexpr int64_t kN = 64;
  for (SimdLevel level : {SimdLevel::kScalar, HardwareSimdLevel()}) {
    for (bool positive : {true, false}) {
      std::vector<double> p(kN, 0.0), r(kN), w(kN);
      std::vector<uint8_t> flags(kN, 7);  // poison: must be overwritten
      for (int64_t i = 0; i < kN; ++i) {
        // Alternate signs so both phases see violations.
        w[static_cast<size_t>(i)] = (i % 2 == 0 ? 1.0 : -1.0) * 1e-3;
        r[static_cast<size_t>(i)] = 2.0 * w[static_cast<size_t>(i)];
      }
      const int64_t lo = 5, hi = 61;
      const int64_t count = simdops::SelfUpdateAndFlag(
          level, p.data(), r.data(), w.data(), 0.2, 1e-4, positive,
          flags.data(), lo, hi);
      int64_t recount = 0;
      for (int64_t i = lo; i < hi; ++i) {
        const uint8_t f = flags[static_cast<size_t>(i)];
        ASSERT_TRUE(f == 0 || f == 1) << "unwritten flag at " << i;
        recount += f;
        // r - w alternates sign: after the update exactly the matching
        // phase's vertices violate the threshold.
        ASSERT_EQ(f == 1, positive == (i % 2 == 0)) << "flag value at " << i;
      }
      EXPECT_EQ(count, recount);
      EXPECT_EQ(flags[0], 7);   // outside [lo, hi): untouched
      EXPECT_EQ(flags[63], 7);
    }
  }
}

// ---------------------------------------------------- KernelEquivalence

DynamicGraph KernelTestGraph(int kind) {
  switch (kind) {
    case 0:
      return DynamicGraph::FromEdges(GenerateErdosRenyi(512, 4096, 77), 512);
    case 1:
      return DynamicGraph::FromEdges(
          GenerateRmat({.scale = 9, .avg_degree = 10, .seed = 78}), 1 << 9);
    default:
      return StarGraph(512);
  }
}

PprOptions KernelOptions() {
  PprOptions options;
  options.alpha = 0.15;
  options.eps = 1e-6;
  options.variant = PushVariant::kAdaptive;
  return options;
}

// Forced-dense (every non-empty round takes the pull sweep) matches the
// oracle and actually runs dense rounds, on every graph family and with
// parallel rounds.
TEST(KernelEquivalenceTest, ForcedDenseMatchesOracle) {
  for (int kind = 0; kind < 3; ++kind) {
    for (int threads : {1, kTeamThreads}) {
      ScopedNumThreads guard(threads);
      DynamicGraph g = KernelTestGraph(kind);
      PprOptions options = KernelOptions();
      options.dense_threshold_den = int64_t{1} << 60;  // m/den == 0: dense
      DynamicPpr ppr(&g, 0, options);
      ppr.Initialize();
      EXPECT_GT(ppr.last_stats().counters.dense_rounds, 0)
          << "kind=" << kind << " threads=" << threads;
      EXPECT_LE(ppr.state().MaxAbsResidual(), options.eps);
      PowerIterationOptions opt;
      opt.alpha = options.alpha;
      const auto truth = PowerIterationPpr(g, 0, opt);
      EXPECT_LE(MaxAbsError(ppr.Estimates(), truth), options.eps * 1.0001)
          << "kind=" << kind << " threads=" << threads;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        ASSERT_NEAR(InvariantDefect(g, 0, v, options.alpha, ppr.state().p,
                                    ppr.state().r),
                    0.0, 1e-9);
      }
    }
  }
}

// den=0 disables the switch: adaptive degrades to exactly PushIterationOpt
// (same estimates bit for bit at one thread, zero dense rounds).
TEST(KernelEquivalenceTest, ZeroDenominatorDisablesDense) {
  ScopedNumThreads one(1);
  DynamicGraph g = KernelTestGraph(1);
  PprOptions options = KernelOptions();
  options.dense_threshold_den = 0;
  DynamicPpr adaptive(&g, 0, options);
  adaptive.Initialize();
  EXPECT_EQ(adaptive.last_stats().counters.dense_rounds, 0);

  options.variant = PushVariant::kOpt;
  DynamicPpr opt(&g, 0, options);
  opt.Initialize();
  ASSERT_EQ(adaptive.Estimates().size(), opt.Estimates().size());
  for (size_t v = 0; v < opt.Estimates().size(); ++v) {
    ASSERT_EQ(adaptive.Estimates()[v], opt.Estimates()[v]) << "v=" << v;
  }
}

// Adaptive vs opt under sliding-window maintenance: both are
// eps-approximations of the same vector, so they differ by at most 2 eps
// at every vertex after every slide — and adaptive does go dense.
TEST(KernelEquivalenceTest, AdaptiveTracksOptUnderMaintenance) {
  ScopedNumThreads guard(kTeamThreads);
  DynamicGraph base = KernelTestGraph(1);
  EdgeStream stream = EdgeStream::RandomPermutation(base.ToEdgeList(), 99);
  SlidingWindow window(&stream, 0.4);
  DynamicGraph g_opt =
      DynamicGraph::FromEdges(window.InitialEdges(), base.NumVertices());
  DynamicGraph g_adp = g_opt;
  PprOptions options = KernelOptions();
  options.eps = 1e-5;
  options.variant = PushVariant::kOpt;
  DynamicPpr opt(&g_opt, 1, options);
  options.variant = PushVariant::kAdaptive;
  DynamicPpr adaptive(&g_adp, 1, options);
  opt.Initialize();
  adaptive.Initialize();
  int64_t dense_rounds = adaptive.last_stats().counters.dense_rounds;
  const EdgeCount k = std::max<EdgeCount>(window.WindowSize() / 20, 1);
  for (int slide = 0; slide < 4 && window.CanSlide(k); ++slide) {
    const UpdateBatch batch = window.NextBatch(k);
    opt.ApplyBatch(batch);
    adaptive.ApplyBatch(batch);
    dense_rounds += adaptive.last_stats().counters.dense_rounds;
    ASSERT_LE(adaptive.state().MaxAbsResidual(), options.eps);
    ASSERT_LE(MaxAbsError(adaptive.Estimates(), opt.Estimates()),
              2.0 * options.eps)
        << "slide " << slide;
  }
  EXPECT_GT(dense_rounds, 0) << "threshold never fired — not adaptive";
}

// The per-engine force_scalar_kernels option and the SIMD path must agree
// bitwise: same rounds, same gather order, contraction-free elementwise
// ops (cpu_dispatch.h's contract, applied end-to-end through a real push).
TEST(KernelEquivalenceTest, ScalarAndSimdEnginesAgreeBitwise) {
  if (HardwareSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no SIMD level to compare against on this machine";
  }
  for (int threads : {1, kTeamThreads}) {
    ScopedNumThreads guard(threads);
    DynamicGraph g_scalar = KernelTestGraph(0);
    DynamicGraph g_simd = g_scalar;
    PprOptions options = KernelOptions();
    options.dense_threshold_den = int64_t{1} << 60;  // all-dense rounds
    options.force_scalar_kernels = true;
    DynamicPpr scalar(&g_scalar, 0, options);
    options.force_scalar_kernels = false;
    DynamicPpr simd(&g_simd, 0, options);
    scalar.Initialize();
    simd.Initialize();
    EXPECT_EQ(scalar.last_stats().counters.iterations,
              simd.last_stats().counters.iterations);
    ASSERT_EQ(scalar.Estimates().size(), simd.Estimates().size());
    for (size_t v = 0; v < scalar.Estimates().size(); ++v) {
      ASSERT_EQ(scalar.Estimates()[v], simd.Estimates()[v])
          << "threads=" << threads << " v=" << v;
      ASSERT_EQ(scalar.Residuals()[v], simd.Residuals()[v])
          << "threads=" << threads << " v=" << v;
    }
  }
}

// --------------------------------------------------------- FrontierDense

TEST(FrontierDenseTest, ConvertRoundTripPreservesMembership) {
  Frontier f(/*num_threads=*/2);
  f.EnsureCapacity(100);
  // Stage {3, 7, 42} through the normal sparse path.
  f.Enqueue(0, 3);
  f.Enqueue(1, 7);
  f.Enqueue(0, 42);
  f.FlushToCurrent();
  ASSERT_EQ(f.CurrentSize(), 3);
  ASSERT_EQ(f.mode(), FrontierMode::kSparse);

  f.ConvertToDense(100);
  EXPECT_EQ(f.mode(), FrontierMode::kDense);
  EXPECT_EQ(f.CurrentSize(), 3);
  const uint8_t* flags = f.DenseCurrent();
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(flags[v] != 0, v == 3 || v == 7 || v == 42) << "v=" << v;
  }

  f.ConvertToSparse();
  EXPECT_EQ(f.mode(), FrontierMode::kSparse);
  ASSERT_EQ(f.CurrentSize(), 3);
  // Packing is ascending by construction.
  EXPECT_EQ(f.Current()[0], 3);
  EXPECT_EQ(f.Current()[1], 7);
  EXPECT_EQ(f.Current()[2], 42);
}

TEST(FrontierDenseTest, DenseFlushAdoptsNextFlags) {
  Frontier f(/*num_threads=*/1);
  f.EnsureCapacity(64);
  f.Enqueue(0, 5);
  f.FlushToCurrent();
  f.ConvertToDense(64);

  uint8_t* next = f.DenseNext();
  std::memset(next, 0, 64);
  next[9] = 1;
  next[33] = 1;
  f.SetDenseNextSize(2);
  f.FlushToCurrent();
  EXPECT_EQ(f.mode(), FrontierMode::kDense);
  EXPECT_EQ(f.CurrentSize(), 2);
  EXPECT_TRUE(f.DenseCurrent()[9] != 0);
  EXPECT_TRUE(f.DenseCurrent()[33] != 0);
  EXPECT_TRUE(f.DenseCurrent()[5] == 0);

  f.Clear();
  EXPECT_EQ(f.mode(), FrontierMode::kSparse);
  EXPECT_EQ(f.CurrentSize(), 0);
}

// ---------------------------------------------------------- NumaTopology

TEST(NumaTopologyTest, ParseCpuList) {
  using numa::ParseCpuList;
  EXPECT_EQ(ParseCpuList("0"), (std::vector<int>{0}));
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ParseCpuList("0-2,8,10-11"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(ParseCpuList("3,1,1-2"), (std::vector<int>{1, 2, 3}));  // dedup
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("a-b").empty());
  EXPECT_TRUE(ParseCpuList("4-2").empty());   // inverted range
  EXPECT_TRUE(ParseCpuList("-3").empty());    // negative
  EXPECT_TRUE(ParseCpuList("1,,2").empty());  // empty element
}

TEST(NumaTopologyTest, TopologyIsSane) {
  const numa::Topology& topo = numa::GetTopology();
  ASSERT_GE(topo.NumNodes(), 1);
  if (topo.IsMultiNode()) {
    for (const auto& cpus : topo.node_cpus) EXPECT_FALSE(cpus.empty());
  }
}

TEST(NumaTopologyTest, ScopedBindingNoOpCases) {
  {
    numa::ScopedNodeBinding bind(-1);  // "no node": the pool's off switch
    EXPECT_FALSE(bind.bound());
  }
  {
    numa::ScopedNodeBinding bind(1 << 20);  // out of range: no-op
    EXPECT_FALSE(bind.bound());
  }
  // Node 0 binds only on a genuinely multi-node machine; either way the
  // destructor must leave the thread runnable (the loop below executes).
  {
    numa::ScopedNodeBinding bind(0);
    EXPECT_EQ(bind.bound(), numa::GetTopology().IsMultiNode());
  }
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink += static_cast<double>(i);
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace dppr
