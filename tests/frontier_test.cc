// Unit tests for the Frontier data structure (per-thread buffers, shared
// dedup flags, current-membership tracking) and batch utilities.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "core/frontier.h"
#include "stream/batch_utils.h"

namespace dppr {
namespace {

TEST(FrontierTest, StartsEmpty) {
  Frontier f(2);
  EXPECT_EQ(f.CurrentSize(), 0);
  EXPECT_TRUE(f.Current().empty());
}

TEST(FrontierTest, EnqueueAndFlush) {
  Frontier f(2);
  f.EnsureCapacity(10);
  f.Enqueue(0, 3);
  f.Enqueue(1, 7);
  f.Enqueue(0, 5);
  EXPECT_EQ(f.FlushToCurrent(), 3);
  auto cur = f.Current();
  std::multiset<VertexId> got(cur.begin(), cur.end());
  EXPECT_EQ(got, (std::multiset<VertexId>{3, 5, 7}));
}

TEST(FrontierTest, FlushReplacesCurrent) {
  Frontier f(1);
  f.EnsureCapacity(10);
  f.Enqueue(0, 1);
  f.FlushToCurrent();
  f.Enqueue(0, 2);
  EXPECT_EQ(f.FlushToCurrent(), 1);
  EXPECT_EQ(f.Current()[0], 2);
}

TEST(FrontierTest, UniqueEnqueueDedups) {
  Frontier f(2);
  f.EnsureCapacity(10);
  EXPECT_TRUE(f.UniqueEnqueue(0, 4));
  EXPECT_FALSE(f.UniqueEnqueue(1, 4));  // duplicate, different thread
  EXPECT_TRUE(f.UniqueEnqueue(1, 6));
  EXPECT_EQ(f.FlushToCurrent(), 2);
}

TEST(FrontierTest, FlagsResetBetweenIterations) {
  Frontier f(1);
  f.EnsureCapacity(10);
  EXPECT_TRUE(f.UniqueEnqueue(0, 4));
  f.FlushToCurrent();
  // Same vertex can enter the NEXT frontier.
  EXPECT_TRUE(f.UniqueEnqueue(0, 4));
  EXPECT_EQ(f.FlushToCurrent(), 1);
}

TEST(FrontierTest, ClearResetsEverything) {
  Frontier f(1);
  f.EnsureCapacity(10);
  f.UniqueEnqueue(0, 2);
  f.FlushToCurrent();
  f.UniqueEnqueue(0, 3);  // pending in buffer
  f.Clear();
  EXPECT_EQ(f.CurrentSize(), 0);
  EXPECT_EQ(f.FlushToCurrent(), 0);
  EXPECT_TRUE(f.UniqueEnqueue(0, 3));  // flag was cleared
}

TEST(FrontierTest, SetCurrentDirectly) {
  Frontier f(1);
  f.EnsureCapacity(10);
  f.SetCurrent({1, 2, 3});
  EXPECT_EQ(f.CurrentSize(), 3);
}

TEST(FrontierTest, TrackCurrentMembership) {
  Frontier f(1);
  f.EnsureCapacity(10);
  f.SetTrackCurrent(true);
  f.SetCurrent({2, 5});
  EXPECT_TRUE(f.InCurrent(2));
  EXPECT_TRUE(f.InCurrent(5));
  EXPECT_FALSE(f.InCurrent(3));
  f.Enqueue(0, 3);
  f.FlushToCurrent();
  EXPECT_FALSE(f.InCurrent(2));  // old membership cleared
  EXPECT_TRUE(f.InCurrent(3));
}

TEST(FrontierTest, EnsureThreadsGrows) {
  Frontier f(1);
  f.EnsureCapacity(10);
  f.EnsureThreads(4);
  f.Enqueue(3, 9);  // buffer index 3 must exist now
  EXPECT_EQ(f.FlushToCurrent(), 1);
}

TEST(FrontierTest, ConcurrentUniqueEnqueueExactlyOnce) {
  Frontier f(8);
  f.EnsureCapacity(1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&f, t]() {
      for (VertexId v = 0; v < 1000; ++v) {
        f.UniqueEnqueue(t, v);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(f.FlushToCurrent(), 1000);
  auto cur = f.Current();
  std::set<VertexId> unique(cur.begin(), cur.end());
  EXPECT_EQ(unique.size(), 1000u);
}

// ------------------------------------------------------------ batch utils

TEST(BatchUtilsTest, MakeUndirectedDoubles) {
  UpdateBatch batch = {EdgeUpdate::Insert(1, 2), EdgeUpdate::Delete(3, 4)};
  UpdateBatch doubled = MakeUndirectedBatch(batch);
  ASSERT_EQ(doubled.size(), 4u);
  EXPECT_EQ(doubled[1], (EdgeUpdate{2, 1, UpdateOp::kInsert}));
  EXPECT_EQ(doubled[3], (EdgeUpdate{4, 3, UpdateOp::kDelete}));
}

TEST(BatchUtilsTest, MakeUndirectedSelfLoopOnce) {
  UpdateBatch batch = {EdgeUpdate::Insert(2, 2)};
  EXPECT_EQ(MakeUndirectedBatch(batch).size(), 1u);
}

TEST(BatchUtilsTest, CountInsertions) {
  UpdateBatch batch = {EdgeUpdate::Insert(0, 1), EdgeUpdate::Delete(1, 2),
                       EdgeUpdate::Insert(2, 3)};
  EXPECT_EQ(CountInsertions(batch), 2);
}

TEST(BatchUtilsTest, SelfCancellationDetected) {
  EXPECT_TRUE(HasSelfCancellation(
      {EdgeUpdate::Insert(0, 1), EdgeUpdate::Delete(0, 1)}));
  EXPECT_TRUE(HasSelfCancellation(
      {EdgeUpdate::Delete(5, 6), EdgeUpdate::Insert(5, 6)}));
  EXPECT_FALSE(HasSelfCancellation(
      {EdgeUpdate::Insert(0, 1), EdgeUpdate::Delete(1, 0)}));
}

}  // namespace
}  // namespace dppr
