// RestoreInvariant (Algorithm 1) tests: exact numbers from the paper's
// Figures 1(b) and 2(b), plus properties on random graphs: the repair
// re-establishes Eq. 2 at u and perturbs no other vertex's equation.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/power_iteration.h"
#include "core/invariant.h"
#include "core/seq_push.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "util/random.h"

namespace dppr {
namespace {

// The state of Figure 1(a)/2(a): converged for source v1 (0-indexed 0)
// with alpha = 0.5, eps = 0.1 on PaperExampleGraph().
PprState PaperInitialState() {
  PprState state(0, 4);
  state.p = {0.5, 0.25, 0.1875, 0.0625};
  state.r = {0.0625, 0.0, 0.0, 0.0625};
  return state;
}

constexpr double kPaperAlpha = 0.5;

TEST(RestoreInvariantTest, PaperFigure1bInsert) {
  DynamicGraph g = PaperExampleGraph();
  PprState state = PaperInitialState();
  const EdgeUpdate e1 = PaperExampleInsertE1();  // v1 -> v2
  g.Apply(e1);
  const double delta = RestoreInvariant(g, &state, e1, kPaperAlpha);
  // Figure 1(b): R1(1) goes 0.0625 -> 0.1562 (exact: 0.15625).
  EXPECT_NEAR(state.r[0], 0.15625, 1e-12);
  EXPECT_NEAR(delta, 0.09375, 1e-12);
  // Nothing else moves.
  EXPECT_DOUBLE_EQ(state.r[1], 0.0);
  EXPECT_DOUBLE_EQ(state.r[3], 0.0625);
  EXPECT_DOUBLE_EQ(state.p[0], 0.5);
}

TEST(RestoreInvariantTest, PaperFigure2bBatchOfTwo) {
  DynamicGraph g = PaperExampleGraph();
  PprState state = PaperInitialState();
  const EdgeUpdate e1 = PaperExampleInsertE1();  // v1 -> v2
  const EdgeUpdate e2 = PaperExampleInsertE2();  // v4 -> v1
  g.Apply(e1);
  RestoreInvariant(g, &state, e1, kPaperAlpha);
  g.Apply(e2);
  RestoreInvariant(g, &state, e2, kPaperAlpha);
  // Figure 2(b): R1(1) = 0.1562, R1(4) = 0.2187 (exact 0.15625/0.21875).
  EXPECT_NEAR(state.r[0], 0.15625, 1e-12);
  EXPECT_NEAR(state.r[3], 0.21875, 1e-12);
}

TEST(RestoreInvariantTest, RepairsEquationAtU) {
  DynamicGraph g = PaperExampleGraph();
  PprState state = PaperInitialState();
  // The initial state satisfies Eq. 2 everywhere.
  for (VertexId v = 0; v < 4; ++v) {
    ASSERT_NEAR(InvariantDefect(g, 0, v, kPaperAlpha, state.p, state.r), 0.0,
                1e-12);
  }
  const EdgeUpdate e1 = PaperExampleInsertE1();
  g.Apply(e1);
  RestoreInvariant(g, &state, e1, kPaperAlpha);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NEAR(InvariantDefect(g, 0, v, kPaperAlpha, state.p, state.r), 0.0,
                1e-12)
        << "vertex " << v;
  }
}

TEST(RestoreInvariantTest, InsertUndoneByDeleteRestoresResidual) {
  DynamicGraph g = PaperExampleGraph();
  PprState state = PaperInitialState();
  const double r0 = state.r[0];
  const EdgeUpdate ins = EdgeUpdate::Insert(0, 1);
  g.Apply(ins);
  RestoreInvariant(g, &state, ins, kPaperAlpha);
  const EdgeUpdate del = EdgeUpdate::Delete(0, 1);
  g.Apply(del);
  RestoreInvariant(g, &state, del, kPaperAlpha);
  EXPECT_NEAR(state.r[0], r0, 1e-12);
}

TEST(RestoreInvariantTest, DeleteLastOutEdgeDegenerateCase) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  // Build an exact state for source 1 via the oracle, r = 0.
  PowerIterationOptions opt;
  opt.alpha = 0.15;
  auto p = PowerIterationPpr(g, 1, opt);
  PprState state(1, 3);
  state.p = p;
  const EdgeUpdate del = EdgeUpdate::Delete(0, 1);  // 0 loses its only edge
  g.Apply(del);
  RestoreInvariant(g, &state, del, 0.15);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_NEAR(InvariantDefect(g, 1, v, 0.15, state.p, state.r), 0.0, 1e-12)
        << "vertex " << v;
  }
}

TEST(RestoreInvariantTest, NewVertexViaInsertion) {
  DynamicGraph g(2);
  g.AddEdge(0, 1);
  PprState state(0, 2);
  state.ResetToUnitResidual();
  SequentialLocalPush(g, &state, 0.15, 1e-6, std::vector<VertexId>{0},
                      nullptr);
  // Edge to a brand-new vertex 5 (grows the vertex set to 6).
  const EdgeUpdate up = EdgeUpdate::Insert(1, 5);
  g.Apply(up);
  RestoreInvariant(g, &state, up, 0.15);
  ASSERT_EQ(state.NumVertices(), 6);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_NEAR(InvariantDefect(g, 0, v, 0.15, state.p, state.r), 0.0, 1e-9)
        << "vertex " << v;
  }
}

// Property: starting from a converged state on a random graph, a random
// sequence of updates with per-update restoration keeps Eq. 2 intact at
// every vertex (this is exactly what Lemma 1 + Algorithm 1 promise).
class RestoreInvariantPropertyTest : public testing::TestWithParam<uint64_t> {
};

TEST_P(RestoreInvariantPropertyTest, RandomChurnKeepsInvariantEverywhere) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  auto edges = GenerateErdosRenyi(40, 160, seed);
  DynamicGraph g = DynamicGraph::FromEdges(edges, 40);
  const auto s = static_cast<VertexId>(rng.NextBounded(40));
  PprState state(s, g.NumVertices());
  state.ResetToUnitResidual();
  SequentialLocalPush(g, &state, 0.2, 1e-8, std::vector<VertexId>{s},
                      nullptr);

  std::vector<Edge> pool = g.ToEdgeList();
  for (int step = 0; step < 200; ++step) {
    EdgeUpdate up;
    if (!pool.empty() && rng.NextBernoulli(0.4)) {
      const auto idx =
          static_cast<size_t>(rng.NextBounded(pool.size()));
      up = EdgeUpdate::Delete(pool[idx].u, pool[idx].v);
      pool[idx] = pool.back();
      pool.pop_back();
    } else {
      up = EdgeUpdate::Insert(static_cast<VertexId>(rng.NextBounded(40)),
                              static_cast<VertexId>(rng.NextBounded(40)));
      pool.push_back({up.u, up.v});
    }
    g.Apply(up);
    RestoreInvariant(g, &state, up, 0.2);
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(InvariantDefect(g, s, v, 0.2, state.p, state.r), 0.0, 1e-9)
        << "seed " << seed << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestoreInvariantPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace dppr
