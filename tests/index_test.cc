// PprIndex tests: every source oracle-accurate through interleaved
// insert/delete batches, exact agreement with independent per-source
// maintenance, push-mode equivalence, engine-pool sizing, snapshot
// publish semantics, and queries running concurrently with ApplyBatch.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "core/dynamic_ppr.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/parallel.h"

namespace dppr {
namespace {

// Drives `slides` sliding-window batches (interleaved inserts + deletes)
// through the index; returns the batches so callers can replay them.
std::vector<UpdateBatch> RecordWindowBatches(EdgeStream* stream,
                                             double window_ratio,
                                             double batch_ratio, int slides,
                                             std::vector<Edge>* initial) {
  SlidingWindow window(stream, window_ratio);
  *initial = window.InitialEdges();
  const EdgeCount k = window.BatchForRatio(batch_ratio);
  std::vector<UpdateBatch> batches;
  for (int s = 0; s < slides && window.CanSlide(k); ++s) {
    batches.push_back(window.NextBatch(k));
  }
  return batches;
}

// --------------------------------------------------------------- accuracy

TEST(PprIndexTest, EverySourceMatchesOracleAfterInterleavedBatches) {
  auto edges = GenerateRmat({.scale = 8, .avg_degree = 8, .seed = 17});
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 18);
  std::vector<Edge> initial;
  auto batches = RecordWindowBatches(&stream, 0.2, 0.01, 12, &initial);
  ASSERT_FALSE(batches.empty());

  DynamicGraph graph =
      DynamicGraph::FromEdges(initial, stream.NumVertices());
  auto hubs = TopOutDegreeVertices(graph, 8);
  PprOptions options;
  options.eps = 1e-6;
  PprIndex index(&graph, hubs, options);
  index.Initialize();
  for (const UpdateBatch& batch : batches) index.ApplyBatch(batch);

  PowerIterationOptions oracle_opt;
  for (size_t h = 0; h < index.NumSources(); ++h) {
    auto truth = PowerIterationPpr(graph, index.SourceVertex(h), oracle_opt);
    EXPECT_LE(MaxAbsError(index.Source(h).Estimates(), truth),
              options.eps * 1.0001)
        << "source " << h;
  }
}

TEST(PprIndexTest, SequentialVariantMatchesIndependentMaintenanceExactly) {
  // With the deterministic sequential push, journal replay must reproduce
  // bit-for-bit what per-source DynamicPpr::ApplyBatch computes: the
  // journal hands every source the same post-update degrees it would have
  // read from the graph interleaving. Restore coalescing is off: a direct
  // Eq. 2 solve is mathematically identical to replay but rounds
  // differently, and this test's claim is exact replay equivalence.
  auto edges = GenerateErdosRenyi(128, 1024, 3);
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 4);
  std::vector<Edge> initial;
  auto batches = RecordWindowBatches(&stream, 0.5, 0.02, 8, &initial);
  ASSERT_FALSE(batches.empty());

  PprOptions options;
  options.eps = 1e-6;
  options.variant = PushVariant::kSequential;
  const std::vector<VertexId> sources = {0, 1, 2};

  DynamicGraph index_graph = DynamicGraph::FromEdges(initial, 128);
  IndexOptions exact_options;
  exact_options.ppr = options;
  exact_options.coalesce_restore = false;
  PprIndex index(&index_graph, sources, exact_options);
  index.Initialize();

  std::vector<DynamicGraph> solo_graphs;
  std::vector<std::unique_ptr<DynamicPpr>> solo;
  for (size_t i = 0; i < sources.size(); ++i) {
    solo_graphs.push_back(DynamicGraph::FromEdges(initial, 128));
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    solo.push_back(std::make_unique<DynamicPpr>(&solo_graphs[i], sources[i],
                                                options));
    solo.back()->Initialize();
  }

  for (const UpdateBatch& batch : batches) {
    index.ApplyBatch(batch);
    for (auto& ppr : solo) ppr->ApplyBatch(batch);
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(index.Source(i).Estimates(), solo[i]->Estimates())
        << "source " << i;
    EXPECT_EQ(index.Source(i).Residuals(), solo[i]->Residuals())
        << "source " << i;
  }
  // The sequential variant needs no engine state at all.
  EXPECT_EQ(index.NumPooledEngines(), 0);
}

TEST(PprIndexTest, PushModesAgreeWithEachOther) {
  auto edges = GenerateRmat({.scale = 7, .avg_degree = 6, .seed = 29});
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 30);
  std::vector<Edge> initial;
  auto batches = RecordWindowBatches(&stream, 0.3, 0.02, 6, &initial);
  ASSERT_FALSE(batches.empty());

  auto run = [&](IndexPushMode mode) {
    DynamicGraph graph =
        DynamicGraph::FromEdges(initial, stream.NumVertices());
    auto hubs = TopOutDegreeVertices(graph, 4);
    IndexOptions options;
    options.ppr.eps = 1e-6;
    options.push_mode = mode;
    PprIndex index(&graph, hubs, options);
    index.Initialize();
    for (const UpdateBatch& batch : batches) index.ApplyBatch(batch);
    std::vector<std::vector<double>> estimates;
    for (size_t h = 0; h < index.NumSources(); ++h) {
      estimates.push_back(index.Source(h).Estimates());
    }
    return estimates;
  };

  auto across = run(IndexPushMode::kAcrossSources);
  auto intra = run(IndexPushMode::kIntraSource);
  ASSERT_EQ(across.size(), intra.size());
  for (size_t h = 0; h < across.size(); ++h) {
    EXPECT_LE(MaxAbsError(across[h], intra[h]), 2e-6) << "source " << h;
  }
}

TEST(PprIndexTest, AcrossSourcePushCorrectUnderOversubscribedThreads) {
  // Forces the across-source schedule with a team larger than the
  // physical core count, so the work-stealing region, per-worker engine
  // leases, and concurrent per-slot publishes all run with genuinely
  // concurrent threads — then validates every source against the oracle.
  ScopedNumThreads guard(4);
  auto edges = GenerateRmat({.scale = 7, .avg_degree = 6, .seed = 41});
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 42);
  std::vector<Edge> initial;
  auto batches = RecordWindowBatches(&stream, 0.3, 0.02, 8, &initial);
  ASSERT_FALSE(batches.empty());

  DynamicGraph graph =
      DynamicGraph::FromEdges(initial, stream.NumVertices());
  auto hubs = TopOutDegreeVertices(graph, 8);
  IndexOptions options;
  options.ppr.eps = 1e-6;
  options.push_mode = IndexPushMode::kAcrossSources;
  PprIndex index(&graph, hubs, options);
  EXPECT_GE(index.NumPooledEngines(), 2);
  index.Initialize();
  for (const UpdateBatch& batch : batches) index.ApplyBatch(batch);
  EXPECT_TRUE(index.last_batch_stats().across_sources);

  PowerIterationOptions oracle_opt;
  for (size_t h = 0; h < index.NumSources(); ++h) {
    auto truth = PowerIterationPpr(graph, index.SourceVertex(h), oracle_opt);
    EXPECT_LE(MaxAbsError(index.Source(h).Estimates(), truth),
              options.ppr.eps * 1.0001)
        << "source " << h;
    EXPECT_EQ(index.Snapshot(h)->estimates, index.Source(h).Estimates());
  }
}

TEST(PprIndexTest, HandlesVerticesBornMidStream) {
  DynamicGraph graph(8);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 0);
  PprOptions options;
  options.eps = 1e-7;
  PprIndex index(&graph, {0, 2}, options);
  index.Initialize();

  // Vertex 100 does not exist yet: snapshot reads must answer 0.
  EXPECT_DOUBLE_EQ(index.QueryVertex(0, 100).value, 0.0);

  UpdateBatch batch = {EdgeUpdate::Insert(100, 0), EdgeUpdate::Insert(0, 100),
                       EdgeUpdate::Delete(1, 2)};
  index.ApplyBatch(batch);
  ASSERT_EQ(graph.NumVertices(), 101);

  PowerIterationOptions oracle_opt;
  for (size_t h = 0; h < index.NumSources(); ++h) {
    auto truth = PowerIterationPpr(graph, index.SourceVertex(h), oracle_opt);
    EXPECT_LE(MaxAbsError(index.Source(h).Estimates(), truth),
              options.eps * 1.0001);
    // Snapshots grew with the graph.
    EXPECT_EQ(index.Snapshot(h)->estimates.size(),
              static_cast<size_t>(graph.NumVertices()));
  }
}

// ------------------------------------------------------------ engine pool

TEST(PprIndexTest, PoolSizeIsMinOfSourcesAndConfiguredSize) {
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(64, 512, 7), 64);
  IndexOptions options;
  options.ppr.eps = 1e-5;

  // K below any pool bound: one engine per source at most.
  PprIndex small(&graph, {0, 1}, options);
  EXPECT_LE(small.NumPooledEngines(), 2);
  EXPECT_GE(small.NumPooledEngines(), 1);

  // Explicit pool bound: K = 16 sources share 3 engines.
  options.engine_pool_size = 3;
  std::vector<VertexId> many;
  for (VertexId v = 0; v < 16; ++v) many.push_back(v);
  PprIndex pooled(&graph, many, options);
  EXPECT_EQ(pooled.NumPooledEngines(), 3);

  pooled.Initialize();
  UpdateBatch batch = {EdgeUpdate::Insert(0, 5), EdgeUpdate::Insert(7, 3)};
  pooled.ApplyBatch(batch);
  EXPECT_GT(pooled.ApproxScratchBytes(), 0u);
}

TEST(PprIndexTest, ScratchGrowsWithPoolNotWithSources) {
  // Same graph, same pool bound, 8x the sources: scratch stays in the
  // same ballpark instead of scaling 8x (per-source engines would).
  auto edges = GenerateErdosRenyi(256, 2048, 11);
  auto run = [&](VertexId num_sources) {
    DynamicGraph graph = DynamicGraph::FromEdges(edges, 256);
    IndexOptions options;
    options.ppr.eps = 1e-5;
    options.engine_pool_size = 2;
    std::vector<VertexId> sources;
    for (VertexId v = 0; v < num_sources; ++v) sources.push_back(v);
    PprIndex index(&graph, sources, options);
    index.Initialize();
    UpdateBatch batch = {EdgeUpdate::Insert(0, 9), EdgeUpdate::Insert(3, 1)};
    index.ApplyBatch(batch);
    return index.ApproxScratchBytes();
  };
  const size_t bytes_8 = run(8);
  const size_t bytes_64 = run(64);
  EXPECT_LT(bytes_64, bytes_8 * 3)
      << "scratch scaled with K: " << bytes_8 << " -> " << bytes_64;
}

// -------------------------------------------------- stats & wall clock

TEST(PprIndexTest, BatchStatsSumCountersButReportWallClock) {
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(128, 1024, 13), 128);
  PprOptions options;
  options.eps = 1e-6;
  const size_t num_sources = 4;
  PprIndex index(&graph, {0, 1, 2, 3}, options);
  index.Initialize();

  UpdateBatch batch = {EdgeUpdate::Insert(0, 7), EdgeUpdate::Insert(9, 2),
                       EdgeUpdate::Delete(0, 7)};
  index.ApplyBatch(batch);

  const IndexBatchStats& stats = index.last_batch_stats();
  // Counters are summed across sources: every source restored every
  // update of the batch exactly once.
  EXPECT_EQ(stats.sources_total.counters.restore_ops,
            static_cast<int64_t>(num_sources * batch.size()));
  EXPECT_EQ(stats.sources_pushed, static_cast<int>(num_sources));
  // Restore work is credited per source (summed CPU time, as documented).
  EXPECT_GT(stats.sources_total.restore_seconds, 0.0);
  // Wall clock is one elapsed measurement of the call, not a per-source
  // sum; it covers the restore and push phases it brackets.
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.wall_seconds,
            stats.restore_wall_seconds + stats.push_wall_seconds - 1e-9);
  EXPECT_EQ(index.LastBatchSeconds(), stats.wall_seconds);
}

// ------------------------------------------------------------- snapshots

TEST(PprIndexTest, SnapshotEpochAdvancesPerMaintenanceCall) {
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(64, 512, 19), 64);
  PprOptions options;
  options.eps = 1e-6;
  PprIndex index(&graph, {0, 1}, options);
  EXPECT_EQ(index.Epoch(0), 0u);
  EXPECT_TRUE(index.Snapshot(0)->estimates.empty());

  index.Initialize();
  EXPECT_EQ(index.Epoch(0), 1u);
  EXPECT_EQ(index.Snapshot(0)->estimates, index.Source(0).Estimates());

  UpdateBatch batch = {EdgeUpdate::Insert(5, 6)};
  index.ApplyBatch(batch);
  EXPECT_EQ(index.Epoch(0), 2u);
  EXPECT_EQ(index.Epoch(1), 2u);
  EXPECT_EQ(index.Snapshot(1)->epoch, 2u);
  EXPECT_EQ(index.Snapshot(1)->estimates, index.Source(1).Estimates());
}

TEST(PprIndexTest, HeldSnapshotSurvivesLaterPublishes) {
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(64, 512, 23), 64);
  PprOptions options;
  options.eps = 1e-6;
  PprIndex index(&graph, {0}, options);
  index.Initialize();

  auto held = index.Snapshot(0);
  const std::vector<double> copy = held->estimates;
  for (int i = 0; i < 5; ++i) {
    UpdateBatch batch = {EdgeUpdate::Insert(i, i + 1)};
    index.ApplyBatch(batch);
  }
  // The old snapshot is immutable no matter how many publishes happened.
  EXPECT_EQ(held->epoch, 1u);
  EXPECT_EQ(held->estimates, copy);
  EXPECT_EQ(index.Epoch(0), 6u);
}

TEST(PprIndexTest, ConcurrentQueriesSeeEpochConsistentSnapshots) {
  // A reader hammers the snapshot API while the writer applies batches.
  // Every snapshot the reader observes must be complete and epoch
  // consistent: its content equals exactly what the writer published for
  // that epoch — never a torn mix of two batches.
  auto edges = GenerateErdosRenyi(128, 1024, 31);
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 32);
  std::vector<Edge> initial;
  auto batches = RecordWindowBatches(&stream, 0.5, 0.01, 40, &initial);
  ASSERT_GE(batches.size(), 10u);

  DynamicGraph graph = DynamicGraph::FromEdges(initial, 128);
  PprOptions options;
  options.eps = 1e-5;
  PprIndex index(&graph, {0}, options);
  index.Initialize();

  // expected[e] = the vector published at epoch e (filled by the writer).
  std::vector<std::vector<double>> expected(batches.size() + 2);
  expected[1] = index.Snapshot(0)->estimates;

  std::atomic<bool> done{false};
  std::vector<std::shared_ptr<const IndexSnapshot>> seen;
  bool reader_monotonic = true;
  bool reader_values_sane = true;
  int64_t reads = 0;
  std::thread reader([&] {
    uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto snap = index.Snapshot(0);
      ++reads;
      if (snap->epoch < last_epoch) reader_monotonic = false;
      if (snap->epoch != last_epoch) {
        last_epoch = snap->epoch;
        seen.push_back(std::move(snap));  // keep one snapshot per epoch
      }
      // Point queries ride the same snapshot path and must always return
      // a sane probability-ish value, mid-batch included.
      PointEstimate est = index.QueryVertex(0, 0);
      if (est.value < 0.0 || est.value > 1.0 + 1e-6) {
        reader_values_sane = false;
        break;
      }
    }
  });

  for (size_t t = 0; t < batches.size(); ++t) {
    index.ApplyBatch(batches[t]);
    expected[t + 2] = index.Snapshot(0)->estimates;
  }
  done.store(true, std::memory_order_release);
  reader.join();

  ASSERT_FALSE(seen.empty());
  EXPECT_TRUE(reader_monotonic) << "snapshot epochs moved backwards";
  EXPECT_TRUE(reader_values_sane) << "point query returned a torn value";
  EXPECT_GT(reads, 0);
  for (size_t i = 0; i < seen.size(); ++i) {
    const auto& snap = seen[i];
    ASSERT_GE(snap->epoch, 1u);
    ASSERT_LT(snap->epoch, expected.size());
    // The snapshot content is exactly the published vector of its epoch.
    EXPECT_EQ(snap->estimates, expected[snap->epoch])
        << "torn or stale snapshot at reader step " << i;
  }
}

// ------------------------------------------------------- dynamic sources

TEST(PprIndexDynamicTest, AddSourceBitMatchesFreshIndex) {
  // An incrementally added source is a from-scratch push on the current
  // graph — with the deterministic sequential variant it must bit-match a
  // fresh single-source PprIndex built over an identically evolved graph,
  // both right after AddSource and after further shared batches.
  auto edges = GenerateErdosRenyi(128, 1024, 41);
  EdgeStream stream = EdgeStream::RandomPermutation(std::move(edges), 42);
  std::vector<Edge> initial;
  auto batches = RecordWindowBatches(&stream, 0.5, 0.02, 8, &initial);
  ASSERT_GE(batches.size(), 4u);

  PprOptions options;
  options.eps = 1e-6;
  options.variant = PushVariant::kSequential;

  DynamicGraph graph = DynamicGraph::FromEdges(initial, 128);
  PprIndex index(&graph, {0, 1}, options);
  index.Initialize();
  const size_t half = batches.size() / 2;
  for (size_t i = 0; i < half; ++i) index.ApplyBatch(batches[i]);

  ASSERT_FALSE(index.HasSource(5));
  ASSERT_TRUE(index.AddSource(5));
  EXPECT_FALSE(index.AddSource(5)) << "duplicate AddSource must be refused";
  EXPECT_FALSE(index.AddSource(100000)) << "non-vertex must be refused";
  ASSERT_EQ(index.NumSources(), 3u);
  EXPECT_EQ(index.SnapshotForSource(5)->epoch, 1u);

  // Evolve a second graph identically and build the reference index on it.
  DynamicGraph ref_graph = DynamicGraph::FromEdges(initial, 128);
  for (size_t i = 0; i < half; ++i) {
    for (const EdgeUpdate& update : batches[i]) ref_graph.Apply(update);
  }
  PprIndex fresh(&ref_graph, {5}, options);
  fresh.Initialize();
  EXPECT_EQ(index.Source(2).Estimates(), fresh.Source(0).Estimates());
  EXPECT_EQ(index.Source(2).Residuals(), fresh.Source(0).Residuals());

  // The newcomer is maintained like any other source from now on.
  for (size_t i = half; i < batches.size(); ++i) {
    index.ApplyBatch(batches[i]);
    fresh.ApplyBatch(batches[i]);
  }
  EXPECT_EQ(index.Source(2).Estimates(), fresh.Source(0).Estimates());
  EXPECT_EQ(index.Source(2).Residuals(), fresh.Source(0).Residuals());

  PowerIterationOptions oracle_opt;
  auto truth = PowerIterationPpr(graph, 5, oracle_opt);
  EXPECT_LE(MaxAbsError(index.Source(2).Estimates(), truth),
            options.eps * 1.0001);
}

TEST(PprIndexDynamicTest, RemoveThenReAddRoundTrips) {
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(64, 512, 7), 64);
  PprOptions options;
  options.eps = 1e-6;
  options.variant = PushVariant::kSequential;
  PprIndex index(&graph, {0, 1, 2}, options);
  index.Initialize();

  const std::vector<double> before = index.Source(2).Estimates();
  const std::vector<double> other = index.Source(1).Estimates();

  ASSERT_TRUE(index.RemoveSource(2));
  EXPECT_FALSE(index.RemoveSource(2)) << "double remove must be refused";
  EXPECT_FALSE(index.HasSource(2));
  ASSERT_EQ(index.NumSources(), 2u);
  EXPECT_EQ(index.QueryVertexForSource(2, 0).status,
            SourceReadResult::Status::kUnknownSource);
  // Remaining sources keep serving through the compacted table.
  EXPECT_EQ(index.Source(1).Estimates(), other);
  EXPECT_EQ(index.SnapshotForSource(1)->estimates, other);

  // Re-adding on the unchanged graph reproduces the exact state.
  ASSERT_TRUE(index.AddSource(2));
  EXPECT_TRUE(index.HasSource(2));
  EXPECT_EQ(index.Source(2).Estimates(), before);
  EXPECT_EQ(index.SnapshotForSource(2)->epoch, 1u)
      << "a re-added source is a fresh slot: epochs restart at 1";
}

TEST(PprIndexDynamicTest, ExportImportMovesSourceWithEpochIntact) {
  // The migration primitive of the sharded router: a source lifted out of
  // one index and installed into another (over an identical graph) keeps
  // its estimates bit-for-bit and continues its epoch sequence.
  auto edges = GenerateErdosRenyi(64, 512, 21);
  DynamicGraph g1 = DynamicGraph::FromEdges(edges, 64);
  DynamicGraph g2 = DynamicGraph::FromEdges(edges, 64);
  PprOptions options;
  options.eps = 1e-6;
  PprIndex from(&g1, {0, 1, 2}, options);
  PprIndex to(&g2, {5}, options);
  from.Initialize();
  to.Initialize();

  // Advance source 1 past epoch 1 so continuity is observable.
  const UpdateBatch batch = {EdgeUpdate::Insert(9, 1),
                             EdgeUpdate::Insert(1, 9)};
  from.ApplyBatch(batch);
  to.ApplyBatch(batch);  // replicas consume the same feed
  const std::vector<double> before = from.SnapshotForSource(1)->estimates;
  const uint64_t epoch_before = from.SnapshotForSource(1)->epoch;
  ASSERT_EQ(epoch_before, 2u);

  ExportedSource exported;
  ASSERT_TRUE(from.ExportSource(1, &exported));
  EXPECT_EQ(exported.source, 1);
  EXPECT_EQ(exported.epoch, epoch_before);
  EXPECT_TRUE(exported.materialized);
  EXPECT_FALSE(from.HasSource(1));
  EXPECT_FALSE(from.ExportSource(1, &exported)) << "already exported";

  ASSERT_TRUE(to.ImportSource(std::move(exported)));
  EXPECT_TRUE(to.HasSource(1));
  auto snap = to.SnapshotForSource(1);
  EXPECT_EQ(snap->epoch, epoch_before)
      << "an imported source re-publishes at exactly the exported epoch";
  EXPECT_EQ(snap->estimates, before);

  // Maintenance continues seamlessly on the new index.
  const UpdateBatch more = {EdgeUpdate::Delete(9, 1)};
  to.ApplyBatch(more);
  EXPECT_EQ(to.SnapshotForSource(1)->epoch, epoch_before + 1);
  auto truth = PowerIterationPpr(g2, 1, PowerIterationOptions{});
  EXPECT_LE(MaxAbsError(to.SnapshotForSource(1)->estimates, truth),
            options.eps * 1.0001);
}

TEST(PprIndexDynamicTest, ExportImportOfEvictedSourceStaysEvicted) {
  auto edges = GenerateErdosRenyi(64, 512, 22);
  DynamicGraph g1 = DynamicGraph::FromEdges(edges, 64);
  DynamicGraph g2 = DynamicGraph::FromEdges(edges, 64);
  IndexOptions options;
  options.ppr.eps = 1e-6;
  PprIndex from(&g1, {0, 1, 2}, options);
  PprIndex to(&g2, {}, options);
  from.Initialize();
  to.Initialize();
  ASSERT_EQ(from.EvictColdSources(2), 1u);
  // Table order ties break toward earlier slots, so source 0 is evicted.
  ASSERT_FALSE(from.IsMaterializedSource(0));

  ExportedSource exported;
  ASSERT_TRUE(from.ExportSource(0, &exported));
  EXPECT_FALSE(exported.materialized);
  EXPECT_EQ(exported.epoch, 1u);

  ASSERT_TRUE(to.ImportSource(std::move(exported)));
  EXPECT_TRUE(to.HasSource(0));
  EXPECT_FALSE(to.IsMaterializedSource(0));
  EXPECT_EQ(to.QueryVertexForSource(0, 0).status,
            SourceReadResult::Status::kNotMaterialized);
  // On-demand materialization publishes the NEXT epoch in sequence.
  ASSERT_TRUE(to.MaterializeSource(0));
  EXPECT_EQ(to.SnapshotForSource(0)->epoch, 2u);
  auto truth = PowerIterationPpr(g2, 0, PowerIterationOptions{});
  EXPECT_LE(MaxAbsError(to.SnapshotForSource(0)->estimates, truth),
            options.ppr.eps * 1.0001);
}

TEST(PprIndexDynamicTest, ImportRejectsDuplicatesAndInvalidVertices) {
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(32, 128, 23), 32);
  PprIndex index(&graph, {3}, PprOptions{});
  index.Initialize();
  ExportedSource dup;
  dup.source = 3;
  dup.epoch = 1;
  dup.materialized = false;
  EXPECT_FALSE(index.ImportSource(std::move(dup)));
  ExportedSource invalid;
  invalid.source = 1000;  // not a vertex
  invalid.epoch = 1;
  invalid.materialized = false;
  EXPECT_FALSE(index.ImportSource(std::move(invalid)));
  EXPECT_EQ(index.NumSources(), 1u);
}

TEST(PprIndexDynamicTest, LruEvictionAndOnDemandMaterialization) {
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(96, 768, 11), 96);
  IndexOptions options;
  options.ppr.eps = 1e-6;
  options.max_materialized_sources = 2;
  PprIndex index(&graph, {0, 1, 2, 3}, options);
  index.Initialize();

  // Under the cap only the first two sources materialize.
  EXPECT_EQ(index.NumMaterializedSources(), 2u);
  EXPECT_TRUE(index.IsMaterializedSource(0));
  EXPECT_TRUE(index.IsMaterializedSource(1));
  EXPECT_FALSE(index.IsMaterializedSource(2));
  auto miss = index.QueryVertexForSource(2, 0);
  EXPECT_EQ(miss.status, SourceReadResult::Status::kNotMaterialized);
  EXPECT_EQ(miss.epoch, 0u);

  // Warm source 1, then materialize 2: the cold source 0 is the victim.
  (void)index.QueryVertexForSource(1, 5);
  ASSERT_TRUE(index.MaterializeSource(2));
  EXPECT_EQ(index.NumMaterializedSources(), 2u);
  EXPECT_FALSE(index.IsMaterializedSource(0));
  EXPECT_TRUE(index.IsMaterializedSource(1));
  EXPECT_TRUE(index.IsMaterializedSource(2));

  // The rematerialized source answers correctly at its next epoch.
  PowerIterationOptions oracle_opt;
  auto truth = PowerIterationPpr(graph, 2, oracle_opt);
  auto hit = index.QueryVertexForSource(2, 5);
  ASSERT_EQ(hit.status, SourceReadResult::Status::kOk);
  EXPECT_NEAR(hit.estimate.value, truth[5], options.ppr.eps * 1.0001);

  // Maintenance skips evicted sources and says so.
  UpdateBatch batch = {EdgeUpdate::Insert(4, 9), EdgeUpdate::Insert(7, 3)};
  index.ApplyBatch(batch);
  EXPECT_EQ(index.last_batch_stats().sources_pushed, 2);
  EXPECT_EQ(index.last_batch_stats().sources_skipped, 2);

  // An eviction preserves the epoch; re-materialization resumes the
  // sequence (epoch 2 here: Initialize + the post-batch publish was
  // skipped for the evicted source, so its next publish is #2).
  ASSERT_TRUE(index.MaterializeSource(0));
  EXPECT_EQ(index.SnapshotForSource(0)->epoch, 2u);
  auto truth0 = PowerIterationPpr(graph, 0, oracle_opt);
  EXPECT_LE(MaxAbsError(index.SnapshotForSource(0)->estimates, truth0),
            options.ppr.eps * 1.0001)
      << "re-materialization must compute against the CURRENT graph";
}

TEST(PprIndexDynamicTest, ConcurrentReadsDuringEvictionStaySane) {
  // Readers hammer the by-source snapshot API while the maintainer
  // evicts, re-materializes, adds, removes, and applies batches. Every
  // response a reader sees must be a complete single-epoch snapshot:
  // status coherent, value within the mathematically possible range, and
  // epochs never moving backwards per source (evictions keep the epoch).
  DynamicGraph graph = DynamicGraph::FromEdges(
      GenerateErdosRenyi(128, 1024, 13), 128);
  IndexOptions options;
  options.ppr.eps = 1e-5;
  options.max_materialized_sources = 2;
  const std::vector<VertexId> stable = {0, 1, 2};
  PprIndex index(&graph, stable, options);
  index.Initialize();

  std::atomic<bool> done{false};
  std::atomic<bool> sane{true};
  std::atomic<int64_t> ok_reads{0};
  auto reader = [&] {
    std::vector<uint64_t> last_epoch(stable.size(), 0);
    while (!done.load(std::memory_order_acquire)) {
      for (size_t i = 0; i < stable.size(); ++i) {
        const VertexId s = stable[i];
        auto res = index.QueryVertexForSource(s, s);
        if (res.status == SourceReadResult::Status::kOk) {
          ok_reads.fetch_add(1, std::memory_order_relaxed);
          // pi(s) >= alpha always; the estimate is eps-accurate.
          if (res.estimate.value < options.ppr.alpha - 2 * options.ppr.eps ||
              res.estimate.value > 1.0 + 2 * options.ppr.eps) {
            sane.store(false);
          }
        }
        if (res.epoch < last_epoch[i]) sane.store(false);
        last_epoch[i] = res.epoch;
      }
    }
  };
  std::thread r1(reader), r2(reader);

  // At least 30 churn rounds, extended until the readers have seen an OK
  // answer — kAdaptive materialization is fast enough that a fixed round
  // count can complete before the reader threads are even scheduled.
  for (int round = 0; round < 30 || ok_reads.load() == 0; ++round) {
    ASSERT_LT(round, 1000000) << "readers never got scheduled";
    index.MaterializeSource(stable[static_cast<size_t>(round) % 3]);
    if (round % 3 == 0) {
      UpdateBatch batch = {EdgeUpdate::Insert(round % 64, (round + 17) % 64)};
      index.ApplyBatch(batch);
    }
    if (round % 5 == 0) {
      index.AddSource(64 + round % 4);
      index.RemoveSource(64 + round % 4);
    }
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_TRUE(sane.load()) << "reader observed a torn or impossible state";
  EXPECT_GT(ok_reads.load(), 0);
}

// ---------------------------------------------------- restore coalescing

TEST(PprIndexCoalesceTest, HeavyHitterReplaysCollapseIntoDirectSolves) {
  // A ring (out-degree 1 everywhere) hammered with insert/delete churn on
  // one endpoint: 40 journal entries for u=5 against a final out-degree
  // of 1 — exactly the shape where one direct Eq. 2 solve beats 40
  // replays. The estimates must stay oracle-accurate, and the stats must
  // expose the before/after pair.
  const VertexId n = 64;
  DynamicGraph graph(n);
  for (VertexId v = 0; v < n; ++v) graph.AddEdge(v, (v + 1) % n);

  IndexOptions options;
  options.ppr.eps = 1e-6;
  ASSERT_TRUE(options.coalesce_restore) << "coalescing should default on";
  PprIndex index(&graph, {0, 7}, options);
  index.Initialize();

  UpdateBatch batch;
  for (int i = 0; i < 20; ++i) {
    const VertexId v = 10 + (i % 7);
    batch.push_back(EdgeUpdate::Insert(5, v));
    batch.push_back(EdgeUpdate::Delete(5, v));
  }
  batch.push_back(EdgeUpdate::Insert(9, 30));
  batch.push_back(EdgeUpdate::Insert(9, 31));
  index.ApplyBatch(batch);

  const PushCounters& counters =
      index.last_batch_stats().sources_total.counters;
  const int64_t k = 2;  // sources
  EXPECT_EQ(counters.restore_input_updates,
            k * static_cast<int64_t>(batch.size()))
      << "'before' counter = full journal per source";
  // Per source: 2 replays (vertex 9) + 1 direct solve (vertex 5).
  EXPECT_EQ(counters.restore_ops, k * 3);
  EXPECT_EQ(counters.restore_direct_solves, k * 1);
  EXPECT_LT(counters.restore_ops, counters.restore_input_updates);

  PowerIterationOptions oracle_opt;
  for (size_t h = 0; h < index.NumSources(); ++h) {
    auto truth = PowerIterationPpr(graph, index.SourceVertex(h), oracle_opt);
    EXPECT_LE(MaxAbsError(index.Source(h).Estimates(), truth),
              options.ppr.eps * 1.0001)
        << "source " << h;
  }

  // Cross-check against the exact replay path.
  DynamicGraph ref_graph(n);
  for (VertexId v = 0; v < n; ++v) ref_graph.AddEdge(v, (v + 1) % n);
  IndexOptions exact = options;
  exact.coalesce_restore = false;
  PprIndex ref(&ref_graph, {0, 7}, exact);
  ref.Initialize();
  ref.ApplyBatch(batch);
  EXPECT_EQ(ref.last_batch_stats().sources_total.counters.restore_ops,
            ref.last_batch_stats()
                .sources_total.counters.restore_input_updates)
      << "with coalescing off the before/after counters must agree";
  for (size_t h = 0; h < index.NumSources(); ++h) {
    EXPECT_LE(MaxAbsError(index.Source(h).Estimates(),
                          ref.Source(h).Estimates()),
              2 * options.ppr.eps)
        << "source " << h;
  }
}

}  // namespace
}  // namespace dppr
