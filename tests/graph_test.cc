// Unit tests for the graph substrate: DynamicGraph mutation semantics,
// CSR snapshots, edge-list IO, degree statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "graph/csr.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/random.h"

namespace dppr {
namespace {

TEST(DynamicGraphTest, EmptyGraph) {
  DynamicGraph g;
  EXPECT_EQ(g.NumVertices(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_FALSE(g.IsValid(0));
}

TEST(DynamicGraphTest, AddEdgeGrowsVertexSet) {
  DynamicGraph g;
  g.AddEdge(3, 7);
  EXPECT_EQ(g.NumVertices(), 8);  // ids are dense [0, 8)
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.OutDegree(3), 1);
  EXPECT_EQ(g.InDegree(7), 1);
  EXPECT_EQ(g.OutDegree(5), 0);
  EXPECT_TRUE(g.HasEdge(3, 7));
  EXPECT_FALSE(g.HasEdge(7, 3));
}

TEST(DynamicGraphTest, AdjacencyIsConsistentBothDirections) {
  DynamicGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(2, 1);
  auto out0 = g.OutNeighbors(0);
  EXPECT_EQ(std::set<VertexId>(out0.begin(), out0.end()),
            (std::set<VertexId>{1, 2}));
  auto in1 = g.InNeighbors(1);
  EXPECT_EQ(std::set<VertexId>(in1.begin(), in1.end()),
            (std::set<VertexId>{0, 2}));
}

TEST(DynamicGraphTest, RemoveEdgeBothDirections) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.OutDegree(0), 0);
  EXPECT_EQ(g.InDegree(1), 0);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(DynamicGraphTest, RemoveMissingEdgeReturnsFalse) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);
  EXPECT_FALSE(g.RemoveEdge(1, 0));
  EXPECT_FALSE(g.RemoveEdge(0, 2));
  EXPECT_FALSE(g.RemoveEdge(5, 6));  // out of range
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(DynamicGraphTest, ParallelEdgesCountMultiplicity) {
  DynamicGraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.OutDegree(0), 1);  // removes ONE occurrence
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(DynamicGraphTest, SelfLoopSupported) {
  DynamicGraph g(2);
  g.AddEdge(1, 1);
  EXPECT_EQ(g.OutDegree(1), 1);
  EXPECT_EQ(g.InDegree(1), 1);
  EXPECT_TRUE(g.RemoveEdge(1, 1));
  EXPECT_EQ(g.NumEdges(), 0);
}

TEST(DynamicGraphTest, ApplyInsertAndDelete) {
  DynamicGraph g(3);
  g.Apply(EdgeUpdate::Insert(0, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
  g.Apply(EdgeUpdate::Delete(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(DynamicGraphDeathTest, ApplyDeleteMissingAborts) {
  DynamicGraph g(3);
  EXPECT_DEATH(g.Apply(EdgeUpdate::Delete(0, 1)), "non-existent");
}

TEST(DynamicGraphTest, FromEdgesRoundTrip) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 2}};
  DynamicGraph g = DynamicGraph::FromEdges(edges);
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 4);
  auto round = g.ToEdgeList();
  auto key = [](const Edge& e) { return e.u * 1000 + e.v; };
  std::vector<int> a;
  std::vector<int> b;
  for (const auto& e : edges) a.push_back(key(e));
  for (const auto& e : round) b.push_back(key(e));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(DynamicGraphTest, AverageDegree) {
  DynamicGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.5);
}

TEST(DynamicGraphTest, ChurnStressInOutStayConsistent) {
  // Random insert/delete churn; verify in/out views agree at the end.
  Rng rng(123);
  DynamicGraph g(50);
  std::multiset<std::pair<VertexId, VertexId>> reference;
  for (int step = 0; step < 5000; ++step) {
    const auto u = static_cast<VertexId>(rng.NextBounded(50));
    const auto v = static_cast<VertexId>(rng.NextBounded(50));
    if (rng.NextBernoulli(0.6) || reference.empty()) {
      g.AddEdge(u, v);
      reference.insert({u, v});
    } else {
      auto it = reference.begin();
      std::advance(it, static_cast<int64_t>(
                           rng.NextBounded(reference.size())));
      ASSERT_TRUE(g.RemoveEdge(it->first, it->second));
      reference.erase(it);
    }
  }
  ASSERT_EQ(g.NumEdges(), static_cast<EdgeCount>(reference.size()));
  // Rebuild reference from graph and compare.
  std::multiset<std::pair<VertexId, VertexId>> from_out;
  std::multiset<std::pair<VertexId, VertexId>> from_in;
  for (VertexId x = 0; x < g.NumVertices(); ++x) {
    for (VertexId y : g.OutNeighbors(x)) from_out.insert({x, y});
    for (VertexId y : g.InNeighbors(x)) from_in.insert({y, x});
  }
  EXPECT_EQ(from_out, reference);
  EXPECT_EQ(from_in, reference);
}

// -------------------------------------------------------------------- CSR

TEST(CsrTest, MatchesDynamicGraph) {
  Rng rng(7);
  DynamicGraph g(64);
  for (int i = 0; i < 500; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(64)),
              static_cast<VertexId>(rng.NextBounded(64)));
  }
  CsrGraph csr = CsrGraph::FromDynamic(g);
  ASSERT_EQ(csr.NumVertices(), g.NumVertices());
  ASSERT_EQ(csr.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(csr.OutDegree(v), g.OutDegree(v));
    ASSERT_EQ(csr.InDegree(v), g.InDegree(v));
    auto a = g.OutNeighbors(v);
    auto b = csr.OutNeighbors(v);
    EXPECT_EQ(std::multiset<VertexId>(a.begin(), a.end()),
              std::multiset<VertexId>(b.begin(), b.end()));
    auto c = g.InNeighbors(v);
    auto d = csr.InNeighbors(v);
    EXPECT_EQ(std::multiset<VertexId>(c.begin(), c.end()),
              std::multiset<VertexId>(d.begin(), d.end()));
  }
}

TEST(CsrTest, FromEdgesMatchesFromDynamic) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {1, 0}, {3, 1}};
  DynamicGraph g = DynamicGraph::FromEdges(edges);
  CsrGraph a = CsrGraph::FromDynamic(g);
  CsrGraph b = CsrGraph::FromEdges(edges, g.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto na = a.OutNeighbors(v);
    auto nb = b.OutNeighbors(v);
    EXPECT_EQ(std::multiset<VertexId>(na.begin(), na.end()),
              std::multiset<VertexId>(nb.begin(), nb.end()));
  }
}

TEST(CsrTest, EmptyGraph) {
  DynamicGraph g;
  CsrGraph csr = CsrGraph::FromDynamic(g);
  EXPECT_EQ(csr.NumVertices(), 0);
  EXPECT_EQ(csr.NumEdges(), 0);
}

// --------------------------------------------------------------------- IO

TEST(GraphIoTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/dppr_io_test.txt";
  std::vector<Edge> edges = {{0, 1}, {2, 3}, {1, 0}};
  ASSERT_TRUE(SaveEdgeList(path, edges).ok());
  std::vector<Edge> loaded;
  ASSERT_TRUE(LoadEdgeList(path, &loaded).ok());
  EXPECT_EQ(loaded, edges);
  std::remove(path.c_str());
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  const std::string path = testing::TempDir() + "/dppr_io_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# SNAP-style header\n\n5 6\n# more\n6 5\n", f);
  std::fclose(f);
  std::vector<Edge> loaded;
  ASSERT_TRUE(LoadEdgeList(path, &loaded).ok());
  EXPECT_EQ(loaded, (std::vector<Edge>{{5, 6}, {6, 5}}));
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsIOError) {
  std::vector<Edge> edges;
  EXPECT_TRUE(LoadEdgeList("/nonexistent/nope.txt", &edges).IsIOError());
}

TEST(GraphIoTest, MalformedLineIsCorruption) {
  const std::string path = testing::TempDir() + "/dppr_io_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 2\nnot an edge\n", f);
  std::fclose(f);
  std::vector<Edge> loaded;
  EXPECT_TRUE(LoadEdgeList(path, &loaded).IsCorruption());
  std::remove(path.c_str());
}

TEST(GraphIoTest, RemapDenseCompactsIds) {
  std::vector<Edge> edges = {{100, 200}, {200, 300}, {100, 300}};
  const VertexId n = RemapDense(&edges);
  EXPECT_EQ(n, 3);
  EXPECT_EQ(edges, (std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}}));
}

// ------------------------------------------------------------------ Stats

TEST(GraphStatsTest, ComputesDegrees) {
  DynamicGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 0);
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.num_vertices, 4);
  EXPECT_EQ(stats.num_edges, 4);
  EXPECT_EQ(stats.max_out_degree, 3);
  EXPECT_EQ(stats.max_in_degree, 1);
  EXPECT_EQ(stats.zero_out_degree_count, 2);  // vertices 2 and 3
}

TEST(GraphStatsTest, TopOutDegreeOrdering) {
  DynamicGraph g(5);
  for (int i = 0; i < 4; ++i) g.AddEdge(0, static_cast<VertexId>(i + 1));
  for (int i = 0; i < 2; ++i) g.AddEdge(1, static_cast<VertexId>(i + 2));
  g.AddEdge(2, 0);
  auto top = TopOutDegreeVertices(g, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 0);
  EXPECT_EQ(top[1], 1);
  EXPECT_EQ(top[2], 2);
}

TEST(GraphStatsTest, PickSourceComesFromTopBucket) {
  DynamicGraph g(10);
  for (int i = 1; i < 10; ++i) {
    for (int j = 0; j < i; ++j) {
      g.AddEdge(static_cast<VertexId>(i),
                static_cast<VertexId>((i + j + 1) % 10));
    }
  }
  auto top3 = TopOutDegreeVertices(g, 3);
  std::set<VertexId> allowed(top3.begin(), top3.end());
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_TRUE(allowed.count(PickSourceByDegreeRank(g, 3, &rng)) > 0);
  }
}

TEST(GraphStatsTest, DegreeHistogramBuckets) {
  DynamicGraph g(4);
  // degrees: v0=0, v1=1, v2=2, v3=3
  g.AddEdge(1, 0);
  g.AddEdge(2, 0);
  g.AddEdge(2, 1);
  g.AddEdge(3, 0);
  g.AddEdge(3, 1);
  g.AddEdge(3, 2);
  auto hist = DegreeHistogram(g);
  // bucket 0: deg in [0,1) -> v0 ... using [2^i, 2^{i+1}) over deg+1.
  int64_t total = 0;
  for (int64_t c : hist) total += c;
  EXPECT_EQ(total, 4);
}

}  // namespace
}  // namespace dppr
