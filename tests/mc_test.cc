// Tests for the incremental Monte-Carlo baseline: walk-store invariants,
// estimator accuracy against the forward oracle (statistical bounds with
// fixed seeds), incremental-maintenance correctness, and the locality
// property (only walks through the updated vertex are touched).

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.h"
#include "analysis/power_iteration.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "mc/incremental_mc.h"
#include "mc/walk_store.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"

namespace dppr {
namespace {

// ------------------------------------------------------------- WalkStore

Walk MakeWalk(std::vector<VertexId> trace,
              WalkEnd end = WalkEnd::kTeleport) {
  Walk w;
  w.trace = std::move(trace);
  w.end = end;
  return w;
}

TEST(WalkStoreTest, AddIndexesEveryVisitedVertex) {
  WalkStore store(5);
  const int64_t id = store.AddWalk(MakeWalk({0, 2, 4, 2}));
  EXPECT_EQ(store.NumWalks(), 1);
  EXPECT_EQ(store.WalksThrough(2), std::vector<int64_t>{id});
  EXPECT_EQ(store.WalksThrough(4), std::vector<int64_t>{id});
  EXPECT_TRUE(store.WalksThrough(1).empty());
  EXPECT_EQ(store.EndpointCount(2), 1);
  EXPECT_EQ(store.EndpointCount(4), 0);
}

TEST(WalkStoreTest, ReplaceRewritesIndexAndCounts) {
  WalkStore store(5);
  const int64_t id = store.AddWalk(MakeWalk({0, 1, 2}));
  store.ReplaceWalk(id, MakeWalk({0, 3}));
  EXPECT_TRUE(store.WalksThrough(1).empty());
  EXPECT_TRUE(store.WalksThrough(2).empty());
  EXPECT_EQ(store.WalksThrough(3), std::vector<int64_t>{id});
  EXPECT_EQ(store.EndpointCount(2), 0);
  EXPECT_EQ(store.EndpointCount(3), 1);
}

TEST(WalkStoreTest, GrowsForUnseenVertices) {
  WalkStore store(2);
  store.AddWalk(MakeWalk({0, 100}));
  EXPECT_EQ(store.EndpointCount(100), 1);
  EXPECT_EQ(store.WalksThrough(100).size(), 1u);
}

TEST(WalkStoreTest, MemoryEstimatePositive) {
  WalkStore store(4);
  store.AddWalk(MakeWalk({0, 1, 2, 3}));
  EXPECT_GT(store.ApproxMemoryBytes(), 0);
}

// ------------------------------------------------- static MC estimation

TEST(IncrementalMcTest, StaticEstimateMatchesForwardOracle) {
  DynamicGraph g = DynamicGraph::FromEdges(
      GenerateErdosRenyi(16, 80, 3), 16);
  McOptions options;
  options.alpha = 0.2;
  options.num_walks = 200000;
  options.seed = 7;
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  PowerIterationOptions opt;
  opt.alpha = 0.2;
  auto truth = ForwardPowerIterationPpr(g, 0, opt);
  // Hoeffding at w = 2e5: per-vertex error ~3e-3 w.h.p.
  EXPECT_LE(MaxAbsError(mc.Estimates(), truth), 5e-3);
}

TEST(IncrementalMcTest, EstimatesSumToOne) {
  // Every walk ends somewhere, so the endpoint frequencies sum to 1.
  DynamicGraph g = DynamicGraph::FromEdges(
      GenerateRmat({.scale = 6, .avg_degree = 4, .seed = 9}), 1 << 6);
  McOptions options;
  options.num_walks = 10000;
  IncrementalMonteCarlo mc(&g, 1, options);
  mc.Initialize();
  EXPECT_NEAR(L1Norm(mc.Estimates()), 1.0, 1e-12);
}

TEST(IncrementalMcTest, DanglingSourceAbsorbsEverything) {
  DynamicGraph g(3);
  g.AddEdge(1, 2);  // source 0 is dangling
  McOptions options;
  options.num_walks = 1000;
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  EXPECT_DOUBLE_EQ(mc.Estimate(0), 1.0);
}

TEST(IncrementalMcTest, DefaultWalkCountIsSixTimesV) {
  DynamicGraph g = CycleGraph(50);
  McOptions options;  // num_walks = 0 -> default
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  EXPECT_EQ(mc.NumWalks(), 300);
}

// ---------------------------------------------- incremental maintenance

TEST(IncrementalMcTest, InsertMaintenanceTracksOracle) {
  DynamicGraph g = CycleGraph(12);
  McOptions options;
  options.alpha = 0.25;
  options.num_walks = 150000;
  options.seed = 11;
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  // A shortcut edge changes the distribution substantially.
  UpdateBatch batch = {EdgeUpdate::Insert(0, 6), EdgeUpdate::Insert(3, 9)};
  mc.ApplyBatch(batch);
  PowerIterationOptions opt;
  opt.alpha = 0.25;
  auto truth = ForwardPowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(mc.Estimates(), truth), 6e-3);
  EXPECT_NEAR(L1Norm(mc.Estimates()), 1.0, 1e-12);
}

TEST(IncrementalMcTest, DeleteMaintenanceTracksOracle) {
  DynamicGraph g = CompleteGraph(8);
  McOptions options;
  options.alpha = 0.3;
  options.num_walks = 150000;
  options.seed = 13;
  IncrementalMonteCarlo mc(&g, 2, options);
  mc.Initialize();
  UpdateBatch batch = {EdgeUpdate::Delete(2, 3), EdgeUpdate::Delete(2, 4),
                       EdgeUpdate::Delete(5, 2)};
  mc.ApplyBatch(batch);
  PowerIterationOptions opt;
  opt.alpha = 0.3;
  auto truth = ForwardPowerIterationPpr(g, 2, opt);
  EXPECT_LE(MaxAbsError(mc.Estimates(), truth), 6e-3);
}

TEST(IncrementalMcTest, DeleteToDanglingAbsorbs) {
  DynamicGraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  McOptions options;
  options.alpha = 0.5;
  options.num_walks = 50000;
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  // Remove 0 -> 1: source becomes dangling; all mass at 0.
  mc.ApplyBatch({EdgeUpdate::Delete(0, 1)});
  EXPECT_DOUBLE_EQ(mc.Estimate(0), 1.0);
  EXPECT_DOUBLE_EQ(mc.Estimate(1), 0.0);
}

TEST(IncrementalMcTest, InsertUndanglesForcedStops) {
  DynamicGraph g(3);
  g.AddEdge(0, 1);  // 1 is dangling: every continuing walk parks at 1
  McOptions options;
  options.alpha = 0.4;
  options.num_walks = 100000;
  options.seed = 3;
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  mc.ApplyBatch({EdgeUpdate::Insert(1, 2)});
  PowerIterationOptions opt;
  opt.alpha = 0.4;
  auto truth = ForwardPowerIterationPpr(g, 0, opt);
  EXPECT_LE(MaxAbsError(mc.Estimates(), truth), 6e-3);
  EXPECT_GT(mc.Estimate(2), 0.0);  // mass reached the new vertex
}

TEST(IncrementalMcTest, SlidingWindowChurnStaysCalibrated) {
  auto edges = GenerateErdosRenyi(32, 256, 21);
  EdgeStream stream = EdgeStream::RandomPermutation(edges, 5);
  SlidingWindow window(&stream, 0.5);
  DynamicGraph g = DynamicGraph::FromEdges(window.InitialEdges(), 32);
  McOptions options;
  options.alpha = 0.2;
  options.num_walks = 120000;
  options.seed = 19;
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  PowerIterationOptions opt;
  opt.alpha = 0.2;
  for (int slide = 0; slide < 4; ++slide) {
    mc.ApplyBatch(window.NextBatch(16));
    auto truth = ForwardPowerIterationPpr(g, 0, opt);
    ASSERT_LE(MaxAbsError(mc.Estimates(), truth), 8e-3)
        << "slide " << slide;
    ASSERT_NEAR(L1Norm(mc.Estimates()), 1.0, 1e-12);
  }
}

TEST(IncrementalMcTest, UpdateAwayFromWalksTouchesNothing) {
  // Two disconnected components; updates in the far component cannot
  // affect any walk from the source.
  DynamicGraph g(8);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(5, 6);
  g.AddEdge(6, 7);
  McOptions options;
  options.num_walks = 2000;
  IncrementalMonteCarlo mc(&g, 0, options);
  mc.Initialize();
  mc.ApplyBatch({EdgeUpdate::Insert(6, 5), EdgeUpdate::Delete(5, 6)});
  EXPECT_EQ(mc.last_stats().walks_regenerated, 0);
}

TEST(IncrementalMcTest, DeterministicForSeed) {
  auto run = [] {
    DynamicGraph g = CycleGraph(10);
    McOptions options;
    options.num_walks = 5000;
    options.seed = 77;
    IncrementalMonteCarlo mc(&g, 0, options);
    mc.Initialize();
    mc.ApplyBatch({EdgeUpdate::Insert(0, 5), EdgeUpdate::Delete(3, 4)});
    return mc.Estimates();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dppr
