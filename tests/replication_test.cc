// Replication tests (ctest label: replication; in the TSan and ASan CI
// nets).
//
// Two layers:
//  * ReplicaSetTest — the primary+standby group in isolation: promotion
//    order, failover on a severed primary, double failure =>
//    kUnavailable, the standbys-first feed invariant (a promoted standby
//    is never behind an epoch the primary served), standby re-sync after
//    injected drift, migration blobs spanning the whole group, and the
//    read-distribution policies (kRoundRobinLive spreads, affinity
//    pins, kPrimaryOnly counts zero standby reads).
//  * ReplicationRouterTest — the ReplicaSet behind the ring: a
//    replicas=2 router answers EXACTLY like the unsharded PR 3 oracle in
//    lockstep (statuses, epochs, values up to ±eps) before AND after
//    every primary is severed; AddReplica syncs a late-joining standby
//    at unchanged epochs; the periodic anti-entropy pass repairs
//    injected drift; primaries die under 4-client concurrent load with
//    zero kUnavailable answers and no epoch regression; round-robin
//    reads honor the bounded-staleness contract (max_epoch_lag, pinned-
//    session monotonicity, read counters that add up exactly) through
//    the same primary-kill chaos; and the old AddShard/RemoveShard calls
//    keep working against the new topology.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "router/replica_set.h"
#include "router/shard_backend.h"
#include "router/sharded_service.h"
#include "server/ppr_service.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"

namespace dppr {
namespace {

constexpr double kEps = 1e-6;

IndexOptions TestIndexOptions() {
  IndexOptions options;
  options.ppr.eps = kEps;
  return options;
}

ServiceOptions TestServiceOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  return options;
}

std::unique_ptr<LocalShardBackend> MakeBackend(
    const std::vector<Edge>& edges, VertexId num_vertices,
    std::vector<VertexId> sources) {
  return std::make_unique<LocalShardBackend>(edges, num_vertices,
                                             std::move(sources),
                                             TestIndexOptions(),
                                             TestServiceOptions());
}

/// A started ReplicaSet over `replicas` identical local stacks.
std::shared_ptr<ReplicaSet> MakeSet(const std::vector<Edge>& edges,
                                    VertexId num_vertices,
                                    const std::vector<VertexId>& sources,
                                    int replicas) {
  auto set = std::make_shared<ReplicaSet>();
  for (int r = 0; r < replicas; ++r) {
    set->AddReplica(MakeBackend(edges, num_vertices, sources));
  }
  set->Start();
  return set;
}

// ------------------------------------------------------------ ReplicaSet

TEST(ReplicaSetTest, FailoverPromotesNextLiveStandbyInOrder) {
  auto edges = GenerateErdosRenyi(64, 400, 7);
  auto set = MakeSet(edges, 64, {1, 2, 3}, 3);
  ASSERT_EQ(set->NumReplicas(), 3u);
  EXPECT_EQ(set->PrimaryIndex(), 0);

  const QueryResponse before = set->QueryVertexAsync(1, 1, 0).get();
  ASSERT_EQ(before.status, RequestStatus::kOk);

  // Kill the primary: the NEXT reply fails over — same request, answered
  // by the promoted standby, and the caller never sees kUnavailable.
  ASSERT_TRUE(set->ReplicaBackend(0)->Sever());
  const QueryResponse after = set->QueryVertexAsync(1, 1, 0).get();
  EXPECT_EQ(after.status, RequestStatus::kOk);
  EXPECT_EQ(after.epoch, before.epoch);
  EXPECT_NEAR(after.estimate.value, before.estimate.value,
              2 * kEps + 1e-12);
  EXPECT_EQ(set->PrimaryIndex(), 1) << "promotion order is join order";
  EXPECT_EQ(set->failovers(), 1);
  EXPECT_FALSE(set->IsLive(0));

  // Second failure: promote the last standby.
  ASSERT_TRUE(set->ReplicaBackend(1)->Sever());
  EXPECT_EQ(set->TopKAsync(2, 3, 0).get().status, RequestStatus::kOk);
  EXPECT_EQ(set->PrimaryIndex(), 2);
  EXPECT_EQ(set->failovers(), 2);
  set->Stop();
}

TEST(ReplicaSetTest, DoubleFailureAnswersUnavailable) {
  auto edges = GenerateErdosRenyi(48, 256, 3);
  auto set = MakeSet(edges, 48, {1, 2}, 2);

  ASSERT_TRUE(set->ReplicaBackend(0)->Sever());
  ASSERT_TRUE(set->ReplicaBackend(1)->Sever());
  // Every replica is gone: the slot answers like PR 4's dead remote
  // shard — a status, never a hang.
  EXPECT_EQ(set->QueryVertexAsync(1, 1, 0).get().status,
            RequestStatus::kUnavailable);
  EXPECT_EQ(set->TopKAsync(1, 3, 0).get().status,
            RequestStatus::kUnavailable);
  EXPECT_EQ(set->ApplyUpdatesAsync({EdgeUpdate::Insert(5, 6)}).get().status,
            RequestStatus::kUnavailable);
  EXPECT_TRUE(set->Sources().empty());
  set->Stop();
}

TEST(ReplicaSetTest, StandbyIsNeverBehindAnEpochThePrimaryServed) {
  auto edges = GenerateErdosRenyi(64, 400, 11);
  auto set = MakeSet(edges, 64, {1, 2}, 2);

  // Drive the feed and remember the highest epoch the PRIMARY served.
  uint64_t highest = 0;
  std::mt19937 rng(21);
  for (int step = 0; step < 8; ++step) {
    UpdateBatch batch;
    batch.push_back(EdgeUpdate::Insert(
        static_cast<VertexId>(rng() % 64),
        static_cast<VertexId>(rng() % 64)));
    ASSERT_EQ(set->ApplyUpdatesAsync(batch).get().status,
              RequestStatus::kOk);
    const QueryResponse served = set->QueryVertexAsync(1, 1, 0).get();
    ASSERT_EQ(served.status, RequestStatus::kOk);
    highest = std::max(highest, served.epoch);
  }

  // Kill the primary: the standby received every feed op BEFORE the
  // primary did, so its epoch can only be >= anything a client saw.
  ASSERT_TRUE(set->ReplicaBackend(0)->Sever());
  const QueryResponse promoted = set->QueryVertexAsync(1, 1, 0).get();
  ASSERT_EQ(promoted.status, RequestStatus::kOk);
  EXPECT_GE(promoted.epoch, highest)
      << "a promoted standby must never regress an epoch";
  set->Stop();
}

TEST(ReplicaSetTest, StandbyResyncAfterDrift) {
  auto edges = GenerateErdosRenyi(64, 400, 5);
  auto set = MakeSet(edges, 64, {1, 2, 3}, 2);
  ASSERT_TRUE(set->SourceSetsAgree());

  // Inject drift behind the set's back: the standby loses source 2 and
  // gains source 9 (as if it had joined against a different hub set).
  ShardBackend* standby = set->ReplicaBackend(1);
  ASSERT_EQ(standby->RemoveSourceAsync(2).get().status, RequestStatus::kOk);
  ASSERT_EQ(standby->AddSourceAsync(9).get().status, RequestStatus::kOk);
  EXPECT_FALSE(set->SourceSetsAgree());

  // Anti-entropy: the missing source comes back as a blob at the
  // PRIMARY's epoch, the extra one is dropped.
  const uint64_t primary_epoch = set->QueryVertexAsync(2, 2, 0).get().epoch;
  EXPECT_GE(set->SyncAllStandbys(), 1);
  EXPECT_TRUE(set->SourceSetsAgree());
  EXPECT_GT(set->sync_bytes(), 0);

  ASSERT_TRUE(set->ReplicaBackend(0)->Sever());
  const QueryResponse resynced = set->QueryVertexAsync(2, 2, 0).get();
  EXPECT_EQ(resynced.status, RequestStatus::kOk);
  EXPECT_EQ(resynced.epoch, primary_epoch)
      << "a synced source continues the primary's epoch sequence";
  EXPECT_EQ(set->QueryVertexAsync(9, 9, 0).get().status,
            RequestStatus::kUnknownSource)
      << "the drifted extra source must be gone";
  set->Stop();
}

TEST(ReplicaSetTest, DeadStandbyIsMarkedDeadBySyncNotLivelocked) {
  auto edges = GenerateErdosRenyi(64, 400, 15);
  auto set = MakeSet(edges, 64, {1, 2}, 2);

  // A dead standby answers an empty source set, which reads as drift.
  // The sync pass must mark it dead (one attempt), after which the
  // drift probe skips it — otherwise anti-entropy would re-quiesce the
  // fleet every tick forever.
  ASSERT_TRUE(set->ReplicaBackend(1)->Sever());
  EXPECT_FALSE(set->SourceSetsAgree());
  EXPECT_EQ(set->SyncAllStandbys(), 0);
  EXPECT_FALSE(set->IsLive(1));
  EXPECT_TRUE(set->SourceSetsAgree())
      << "a dead standby must not read as drift";
  EXPECT_EQ(set->PrimaryIndex(), 0) << "the primary is unaffected";
  EXPECT_EQ(set->QueryVertexAsync(1, 1, 0).get().status,
            RequestStatus::kOk);
  set->Stop();
}

TEST(ReplicaSetTest, MigrationBlobsSpanTheWholeGroup) {
  auto edges = GenerateErdosRenyi(64, 400, 9);
  auto donor = MakeSet(edges, 64, {4, 5}, 2);
  auto taker = MakeSet(edges, 64, {}, 2);

  // Extract drains the source from the PRIMARY and the standby alike.
  std::string blob;
  ASSERT_EQ(donor->ExtractBlob(4, &blob).status, RequestStatus::kOk);
  EXPECT_FALSE(donor->HasSource(4));
  EXPECT_FALSE(donor->ReplicaBackend(1)->HasSource(4))
      << "the standby's copy must be dropped too";

  // Inject installs the same bytes on every replica of the taker.
  ASSERT_EQ(taker->InjectBlob(blob).status, RequestStatus::kOk);
  EXPECT_TRUE(taker->HasSource(4));
  EXPECT_TRUE(taker->ReplicaBackend(1)->HasSource(4));
  const uint64_t epoch = taker->QueryVertexAsync(4, 4, 0).get().epoch;
  ASSERT_TRUE(taker->ReplicaBackend(0)->Sever());
  EXPECT_EQ(taker->QueryVertexAsync(4, 4, 0).get().epoch, epoch)
      << "standby holds the injected source at the same epoch";
  donor->Stop();
  taker->Stop();
}

TEST(ReplicaSetTest, RoundRobinSpreadsReadsAndAffinityPins) {
  auto edges = GenerateErdosRenyi(64, 400, 17);
  ReplicaSetOptions set_options;
  set_options.read_policy = ReadPolicy::kRoundRobinLive;
  set_options.max_epoch_lag = 4;
  auto set = std::make_shared<ReplicaSet>(set_options);
  for (int r = 0; r < 3; ++r) {
    set->AddReplica(MakeBackend(edges, 64, {1, 2}));
  }
  set->Start();

  // Unpinned reads rotate over the live replicas; every OK answer is
  // counted on exactly one replica, and only the primary's count as
  // primary reads.
  constexpr int64_t kReads = 30;
  for (int64_t i = 0; i < kReads; ++i) {
    ASSERT_EQ(set->QueryVertexAsync(1, 1, 0).get().status,
              RequestStatus::kOk);
  }
  std::vector<int64_t> reads = set->ReadsPerReplica();
  ASSERT_EQ(reads.size(), 3u);
  int64_t total = 0;
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(reads[r], 0) << "replica " << r << " never served a read";
    total += reads[r];
  }
  EXPECT_EQ(total, kReads);
  EXPECT_EQ(set->primary_reads() + set->standby_reads(), kReads);
  EXPECT_GT(set->standby_reads(), 0);

  // A pinned session sticks to ONE replica: affinity 5 over 3 replicas
  // pins index 2.
  const int64_t pinned_before = set->ReadsPerReplica()[2];
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(set->QueryVertexAsync(2, 2, 0, /*affinity=*/5).get().status,
              RequestStatus::kOk);
  }
  EXPECT_EQ(set->ReadsPerReplica()[2], pinned_before + 12);

  // A pinned session whose replica died follows the slot to the primary
  // — and a dead pinned STANDBY is not a failover.
  ASSERT_TRUE(set->ReplicaBackend(2)->Sever());
  EXPECT_EQ(set->QueryVertexAsync(2, 2, 0, /*affinity=*/5).get().status,
            RequestStatus::kOk);
  EXPECT_EQ(set->failovers(), 0);
  set->Stop();

  // The default policy is unchanged by all of this: kPrimaryOnly on a
  // replicated slot counts every read on the primary, none on a standby.
  auto primary_only = MakeSet(edges, 64, {1}, 2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(primary_only->QueryVertexAsync(1, 1, 0).get().status,
              RequestStatus::kOk);
  }
  EXPECT_EQ(primary_only->primary_reads(), 5);
  EXPECT_EQ(primary_only->standby_reads(), 0);
  EXPECT_EQ(primary_only->ReadsPerReplica(),
            (std::vector<int64_t>{5, 0}));
  primary_only->Stop();
}

TEST(ReplicaSetTest, ManualPromoteAndRemoveReplica) {
  auto edges = GenerateErdosRenyi(48, 256, 13);
  auto set = MakeSet(edges, 48, {1}, 3);

  // Manual promotion (quiesced: nothing in flight).
  ASSERT_EQ(set->QuiesceAsync().get().status, RequestStatus::kOk);
  EXPECT_TRUE(set->Promote(2));
  EXPECT_EQ(set->PrimaryIndex(), 2);
  EXPECT_EQ(set->failovers(), 0) << "a voluntary promote is not a failover";
  EXPECT_EQ(set->QueryVertexAsync(1, 1, 0).get().status,
            RequestStatus::kOk);

  // Removing the primary hands off to the next live replica first.
  EXPECT_TRUE(set->RemoveReplica(2));
  EXPECT_EQ(set->NumReplicas(), 2u);
  EXPECT_EQ(set->QueryVertexAsync(1, 1, 0).get().status,
            RequestStatus::kOk);

  EXPECT_TRUE(set->RemoveReplica(1));
  EXPECT_FALSE(set->RemoveReplica(0)) << "the last replica is refused";
  EXPECT_EQ(set->QueryVertexAsync(1, 1, 0).get().status,
            RequestStatus::kOk);
  set->Stop();
}

// ----------------------------------------------------------- with router

/// Seeded batches over a sliding window, pre-generated (SlidingWindow is
/// not thread-safe) — the shared harness of the equivalence suites.
struct ReplicationWorkload {
  std::vector<Edge> initial;
  VertexId num_vertices = 0;
  std::vector<UpdateBatch> batches;
  std::vector<VertexId> hubs;
};

ReplicationWorkload MakeWorkload(int num_hubs, uint64_t seed) {
  ReplicationWorkload workload;
  auto edges = GenerateErdosRenyi(128, 1024, 29);
  EdgeStream stream =
      EdgeStream::RandomPermutation(std::move(edges), seed);
  SlidingWindow window(&stream, 0.5);
  workload.initial = window.InitialEdges();
  workload.num_vertices = stream.NumVertices();
  const EdgeCount batch_size = window.BatchForRatio(0.01);
  while (static_cast<int>(workload.batches.size()) < 12 &&
         window.CanSlide(batch_size)) {
    workload.batches.push_back(window.NextBatch(batch_size));
  }
  DynamicGraph ranking =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  workload.hubs = TopOutDegreeVertices(ranking, num_hubs);
  return workload;
}

TEST(ReplicationRouterTest, ReplicatedRouterMatchesUnshardedOracle) {
  ReplicationWorkload workload = MakeWorkload(6, 31);

  // The PR 3 oracle: one unsharded serving stack.
  DynamicGraph ref_graph =
      DynamicGraph::FromEdges(workload.initial, workload.num_vertices);
  PprIndex ref_index(&ref_graph, workload.hubs, TestIndexOptions());
  ref_index.Initialize();
  PprService reference(&ref_index, TestServiceOptions());
  reference.Start();

  ShardedServiceOptions options;
  options.num_shards = 2;
  options.replicas = 2;
  options.vnodes_per_shard = 32;
  options.index = TestIndexOptions();
  options.service = TestServiceOptions();
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, options);
  router.Start();

  std::mt19937 rng(777);
  size_t next_batch = 0;
  bool severed = false;
  for (int step = 0; step < 160; ++step) {
    if (step == 80) {
      // Halfway: kill EVERY slot's primary under the running lockstep.
      // The standbys applied the identical feed, so nothing above the
      // replica sets may change — statuses, epochs, values.
      for (int slot : router.ShardIds()) {
        ASSERT_TRUE(router.SeverReplica(slot, router.PrimaryOf(slot)));
      }
      severed = true;
    }
    const uint32_t dice = rng() % 100;
    const VertexId s = workload.hubs[rng() % workload.hubs.size()];
    if (dice < 15 && next_batch < workload.batches.size()) {
      const UpdateBatch& batch = workload.batches[next_batch++];
      ASSERT_EQ(reference.ApplyUpdatesAsync(batch).get().status,
                RequestStatus::kOk);
      ASSERT_EQ(router.ApplyUpdates(batch).status, RequestStatus::kOk);
    } else if (dice < 35) {
      const QueryResponse expected = reference.TopK(s, 5);
      const QueryResponse got = router.TopK(s, 5);
      ASSERT_EQ(got.status, expected.status);
      if (expected.status != RequestStatus::kOk) continue;
      EXPECT_EQ(got.epoch, expected.epoch) << "severed=" << severed;
      ASSERT_EQ(got.topk.entries.size(), expected.topk.entries.size());
      for (size_t e = 0; e < expected.topk.entries.size(); ++e) {
        EXPECT_NEAR(got.topk.entries[e].score,
                    expected.topk.entries[e].score, 2 * kEps + 1e-12);
      }
    } else {
      const VertexId v =
          static_cast<VertexId>(rng() % workload.num_vertices);
      const QueryResponse expected = reference.Query(s, v);
      const QueryResponse got = router.Query(s, v);
      ASSERT_EQ(got.status, expected.status);
      if (expected.status != RequestStatus::kOk) continue;
      EXPECT_EQ(got.epoch, expected.epoch) << "severed=" << severed;
      EXPECT_NEAR(got.estimate.value, expected.estimate.value,
                  2 * kEps + 1e-12);
    }
  }
  EXPECT_EQ(router.Report().failovers,
            static_cast<int64_t>(router.NumShards()));
  reference.Stop();
  router.Stop();
}

TEST(ReplicationRouterTest, AddReplicaSyncsAndServesAfterPrimaryKill) {
  ReplicationWorkload workload = MakeWorkload(8, 33);
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.index = TestIndexOptions();
  options.service = TestServiceOptions();
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, options);
  router.Start();

  // Advance the feed a little so the synced epochs are > 1.
  for (size_t b = 0; b < 3; ++b) {
    ASSERT_EQ(router.ApplyUpdates(workload.batches[b]).status,
              RequestStatus::kOk);
  }
  std::vector<uint64_t> epochs_before;
  for (VertexId hub : workload.hubs) {
    const QueryResponse response = router.Query(hub, hub);
    ASSERT_EQ(response.status, RequestStatus::kOk);
    epochs_before.push_back(response.epoch);
  }

  // Late-joining standbys for every slot: synced from the primaries as
  // blobs at unchanged epochs.
  for (int slot : router.ShardIds()) {
    ASSERT_EQ(router.NumReplicas(slot), 1u);
    ASSERT_GE(router.AddReplica(slot), 0);
    ASSERT_EQ(router.NumReplicas(slot), 2u);
  }
  const RouterReport synced = router.Report();
  EXPECT_EQ(synced.standby_syncs,
            static_cast<int64_t>(workload.hubs.size()));
  EXPECT_GT(synced.sync_bytes, 0);

  // Feed a few more batches THROUGH the replicated slots, then kill
  // every primary: all hubs stay readable, epochs never regress.
  for (size_t b = 3; b < 6; ++b) {
    ASSERT_EQ(router.ApplyUpdates(workload.batches[b]).status,
              RequestStatus::kOk);
  }
  for (int slot : router.ShardIds()) {
    ASSERT_TRUE(router.SeverReplica(slot, router.PrimaryOf(slot)));
  }
  for (size_t i = 0; i < workload.hubs.size(); ++i) {
    const QueryResponse response =
        router.Query(workload.hubs[i], workload.hubs[i]);
    EXPECT_EQ(response.status, RequestStatus::kOk);
    EXPECT_GE(response.epoch, epochs_before[i]);
  }
  EXPECT_GE(router.Report().failovers, 2);
  router.Stop();
}

TEST(ReplicationRouterTest, AntiEntropyRepairsDriftedStandby) {
  ReplicationWorkload workload = MakeWorkload(6, 35);
  ShardedServiceOptions options;
  options.num_shards = 1;
  options.replicas = 2;
  options.index = TestIndexOptions();
  options.service = TestServiceOptions();
  options.anti_entropy_interval = std::chrono::milliseconds(25);
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, options);
  router.Start();
  const int slot = router.ShardIds().front();

  // Drift the standby behind the router's back.
  ShardBackend* standby = router.ReplicaBackendForTesting(slot, 1);
  ASSERT_NE(standby, nullptr);
  const VertexId lost = workload.hubs.front();
  ASSERT_EQ(standby->RemoveSourceAsync(lost).get().status,
            RequestStatus::kOk);

  // The periodic pass must notice and re-sync within a few intervals.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (router.Report().standby_syncs < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(router.Report().standby_syncs, 1) << "anti-entropy never ran";

  // Proof the repair is real: kill the primary, the resynced standby
  // serves the source it had lost.
  ASSERT_TRUE(router.SeverReplica(slot, router.PrimaryOf(slot)));
  EXPECT_EQ(router.Query(lost, lost).status, RequestStatus::kOk);
  router.Stop();
}

TEST(ReplicationRouterTest, ChaosPrimaryKillUnderConcurrentLoad) {
  // 4 clients hammer a replicas=2 fleet while a feeder streams batches;
  // halfway through, every slot's primary is severed. The acceptance
  // bar: zero kUnavailable answers EVER (the failover happens inside the
  // request), per-source epochs never regress, and every hub is readable
  // afterwards. TSan runs this.
  ReplicationWorkload workload = MakeWorkload(8, 41);
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.replicas = 2;
  options.index = TestIndexOptions();
  options.service = TestServiceOptions();
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, options);
  router.Start();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> unavailable{0};
  std::atomic<int64_t> served{0};
  std::atomic<bool> epochs_monotonic{true};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(100 + static_cast<uint32_t>(c));
      std::vector<uint64_t> last_epoch(workload.hubs.size(), 0);
      while (!stop.load(std::memory_order_acquire)) {
        const size_t i = rng() % workload.hubs.size();
        const VertexId hub = workload.hubs[i];
        const QueryResponse response = rng() % 4 == 0
                                           ? router.TopK(hub, 3)
                                           : router.Query(hub, hub);
        if (response.status == RequestStatus::kUnavailable) {
          unavailable.fetch_add(1);
        }
        if (response.status != RequestStatus::kOk) continue;
        served.fetch_add(1);
        if (response.epoch < last_epoch[i]) {
          epochs_monotonic.store(false);
        }
        last_epoch[i] = response.epoch;
      }
    });
  }

  // Feeder: stream every batch; kill the primaries halfway.
  for (size_t b = 0; b < workload.batches.size(); ++b) {
    const MaintResponse applied =
        router.ApplyUpdates(workload.batches[b]);
    ASSERT_EQ(applied.status, RequestStatus::kOk);
    if (b == workload.batches.size() / 2) {
      for (int slot : router.ShardIds()) {
        ASSERT_TRUE(router.SeverReplica(slot, router.PrimaryOf(slot)));
      }
    }
  }
  // Let the clients run against the promoted standbys for a while.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  EXPECT_EQ(unavailable.load(), 0)
      << "failover must absorb the primary deaths";
  EXPECT_TRUE(epochs_monotonic.load()) << "an epoch regressed";
  EXPECT_GT(served.load(), 0);
  for (VertexId hub : workload.hubs) {
    EXPECT_EQ(router.Query(hub, hub).status, RequestStatus::kOk) << hub;
  }
  const RouterReport report = router.Report();
  EXPECT_EQ(report.failovers, static_cast<int64_t>(router.NumShards()));
  router.Stop();
}

TEST(ReplicationRouterTest, ChaosRoundRobinReadsHonorStalenessBound) {
  // The bounded-staleness contract under fire: 4 clients read through
  // kRoundRobinLive (two of them pinned sessions, two unpinned) while a
  // feeder streams batches and every slot's primary is severed halfway.
  // The clients share a per-hub max-seen-epoch floor — a lower bound of
  // the router's internal served-epoch floor, because the router raises
  // its floor BEFORE returning an answer — so every OK answer must be
  // within max_epoch_lag of the floor read before issuing. Pinned
  // sessions must stay per-source monotonic across the primary kills,
  // and afterwards the per-replica read counters must add up EXACTLY to
  // the OK answers the clients counted. TSan runs this.
  constexpr int64_t kLag = 2;
  ReplicationWorkload workload = MakeWorkload(8, 47);
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.replicas = 3;
  options.read_policy = ReadPolicy::kRoundRobinLive;
  options.max_epoch_lag = kLag;
  options.index = TestIndexOptions();
  options.service = TestServiceOptions();
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, options);
  router.Start();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> unavailable{0};
  std::atomic<int64_t> ok_reads{0};
  std::atomic<int64_t> bound_violations{0};
  std::atomic<bool> epochs_monotonic{true};
  std::vector<std::atomic<uint64_t>> floor(workload.hubs.size());
  for (auto& f : floor) f.store(0);

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const uint64_t affinity = c < 2 ? static_cast<uint64_t>(c + 1) : 0;
      std::mt19937 rng(500 + static_cast<uint32_t>(c));
      std::vector<uint64_t> last_epoch(workload.hubs.size(), 0);
      while (!stop.load(std::memory_order_acquire)) {
        const size_t i = rng() % workload.hubs.size();
        const VertexId hub = workload.hubs[i];
        const uint64_t floor_before =
            floor[i].load(std::memory_order_acquire);
        const QueryResponse response =
            rng() % 4 == 0 ? router.TopK(hub, 3, 0, affinity)
                           : router.Query(hub, hub, 0, affinity);
        if (response.status == RequestStatus::kUnavailable) {
          unavailable.fetch_add(1);
        }
        if (response.status != RequestStatus::kOk) continue;
        ok_reads.fetch_add(1);
        if (response.epoch + static_cast<uint64_t>(kLag) < floor_before) {
          bound_violations.fetch_add(1);
        }
        if (affinity != 0) {
          if (response.epoch < last_epoch[i]) {
            epochs_monotonic.store(false);
          }
          last_epoch[i] = response.epoch;
        }
        uint64_t seen = floor[i].load(std::memory_order_relaxed);
        while (seen < response.epoch &&
               !floor[i].compare_exchange_weak(seen, response.epoch)) {
        }
      }
    });
  }

  // Feeder: stream every batch; kill the primaries halfway.
  for (size_t b = 0; b < workload.batches.size(); ++b) {
    ASSERT_EQ(router.ApplyUpdates(workload.batches[b]).status,
              RequestStatus::kOk);
    if (b == workload.batches.size() / 2) {
      for (int slot : router.ShardIds()) {
        ASSERT_TRUE(router.SeverReplica(slot, router.PrimaryOf(slot)));
      }
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  EXPECT_EQ(unavailable.load(), 0)
      << "failover must absorb the primary deaths";
  EXPECT_EQ(bound_violations.load(), 0)
      << "an answer trailed the served floor by more than max_epoch_lag";
  EXPECT_TRUE(epochs_monotonic.load())
      << "a pinned session saw an epoch regress";
  EXPECT_GT(ok_reads.load(), 0);

  const RouterReport report = router.Report();
  EXPECT_EQ(report.failovers, static_cast<int64_t>(router.NumShards()));
  EXPECT_GT(report.standby_reads, 0)
      << "round-robin never left the primary";
  // Every OK answer was counted on exactly one replica — no more, no
  // less — and left exactly one staleness sample.
  EXPECT_EQ(report.primary_reads + report.standby_reads, ok_reads.load());
  int64_t per_replica_total = 0;
  for (const auto& slot : report.reads_per_replica) {
    for (int64_t reads : slot.second) per_replica_total += reads;
  }
  EXPECT_EQ(per_replica_total, ok_reads.load());
  EXPECT_EQ(static_cast<int64_t>(report.staleness.Count()),
            ok_reads.load());
  // Every hub still readable (these reads land after the report
  // snapshot, so the equalities above stay exact).
  for (VertexId hub : workload.hubs) {
    EXPECT_EQ(router.Query(hub, hub).status, RequestStatus::kOk) << hub;
  }
  router.Stop();
}

TEST(ReplicationRouterTest, OldTopologyCallsWorkOnReplicatedSlots) {
  // The PR 3/4 surface (AddShard / RemoveShard) must keep compiling and
  // behaving against the replica-set topology — including draining a
  // replicated slot whose standby holds copies of everything.
  ReplicationWorkload workload = MakeWorkload(8, 43);
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.replicas = 2;
  options.index = TestIndexOptions();
  options.service = TestServiceOptions();
  ShardedPprService router(workload.initial, workload.num_vertices,
                           workload.hubs, options);
  router.Start();
  ASSERT_EQ(router.ApplyUpdates(workload.batches[0]).status,
            RequestStatus::kOk);

  // Grow a (single-replica) slot: ~1/3 of the hubs migrate onto it, out
  // of the replicated donors — whose standbys must drop their copies.
  const int grown = router.AddShard();
  ASSERT_GE(grown, 0);
  EXPECT_EQ(router.NumReplicas(grown), 1u);
  EXPECT_EQ(router.NumSources(), workload.hubs.size());

  // Drain a replicated slot: its sources land on the survivors.
  const int victim = router.ShardIds().front();
  ASSERT_TRUE(router.RemoveShard(victim));
  EXPECT_EQ(router.NumSources(), workload.hubs.size());
  for (VertexId hub : workload.hubs) {
    EXPECT_EQ(router.Query(hub, hub).status, RequestStatus::kOk) << hub;
  }
  router.Stop();
}

}  // namespace
}  // namespace dppr
