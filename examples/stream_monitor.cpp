// Stream monitor: a live view of the maintenance engine's internals.
//
//   ./stream_monitor [--dataset=pokec] [--slides=30] [--variant=opt]
//                    [--batch_ratio=0.001] [--eps=1e-7]
//
// Replays a sliding-window stream over a dataset stand-in and prints, per
// slide, everything an operator would want on a dashboard: latency split
// (restore vs push), push operations, frontier shape, atomic traffic, and
// throughput. Demonstrates the PushStats/PushCounters observability API.

#include <cstdio>

#include "core/dynamic_ppr.h"
#include "gen/datasets.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/args.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  dppr::DatasetSpec spec;
  if (auto st = dppr::FindDataset(args.GetString("dataset", "pokec"), &spec);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  dppr::PprOptions options;
  options.eps = args.GetDouble("eps", 1e-7);
  options.record_iteration_trace = true;
  if (auto st = dppr::ParsePushVariant(args.GetString("variant", "opt"),
                                       &options.variant);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int slides = static_cast<int>(args.GetInt("slides", 30));
  const double batch_ratio = args.GetDouble("batch_ratio", 0.001);

  auto edges = dppr::GenerateDataset(spec, /*scale_shift=*/0);
  dppr::EdgeStream stream =
      dppr::EdgeStream::RandomPermutation(std::move(edges), 17);
  dppr::SlidingWindow window(&stream, 0.1);
  dppr::DynamicGraph graph = dppr::DynamicGraph::FromEdges(
      window.InitialEdges(), stream.NumVertices());

  dppr::Rng rng(23);
  const dppr::VertexId source =
      dppr::PickSourceByDegreeRank(graph, 10, &rng);
  std::printf("dataset %s (stand-in for %s): %s\n", spec.name.c_str(),
              spec.paper_name.c_str(),
              dppr::ComputeDegreeStats(graph).ToString().c_str());
  std::printf("source=%d (top-10 out-degree), variant=%s, eps=%g\n\n",
              source, dppr::PushVariantName(options.variant), options.eps);

  dppr::DynamicPpr ppr(&graph, source, options);
  ppr.Initialize();
  std::printf("initialized in %.1f ms\n\n",
              ppr.last_stats().push_seconds * 1e3);

  const dppr::EdgeCount k = window.BatchForRatio(batch_ratio);
  dppr::TablePrinter table({"slide", "restore_us", "push_ms", "pushes",
                            "rounds", "max_front", "atomics",
                            "edges/s"});
  dppr::Histogram latency;
  int done = 0;
  for (int slide = 0; slide < slides && window.CanSlide(k); ++slide) {
    ppr.ApplyBatch(window.NextBatch(k));
    const auto& s = ppr.last_stats();
    latency.Add(s.TotalSeconds() * 1e3);
    table.AddRow(
        {dppr::TablePrinter::FmtInt(slide + 1),
         dppr::TablePrinter::Fmt(s.restore_seconds * 1e6, 1),
         dppr::TablePrinter::Fmt(s.push_seconds * 1e3, 3),
         dppr::TablePrinter::FmtInt(s.counters.push_ops),
         dppr::TablePrinter::FmtInt(s.pos_iterations + s.neg_iterations),
         dppr::TablePrinter::FmtInt(s.counters.frontier_max),
         dppr::TablePrinter::FmtInt(s.counters.atomic_adds),
         dppr::TablePrinter::FmtInt(static_cast<int64_t>(
             static_cast<double>(2 * k) / std::max(s.TotalSeconds(),
                                                   1e-9)))});
    ++done;
  }
  table.Print();
  std::printf("\n%d slides, batch=%lld updates each; latency: %s\n", done,
              static_cast<long long>(2 * k), latency.Summary("ms").c_str());
  std::printf("max residual after final slide: %.3g (eps %.3g)\n",
              ppr.state().MaxAbsResidual(), options.eps);
  return 0;
}
