// Quickstart: maintain a personalized PageRank vector over a mutating
// graph in a dozen lines.
//
//   ./quickstart [--eps=1e-7] [--alpha=0.15]
//
// Builds a small synthetic graph, computes the PPR vector for one source
// from scratch, applies a batch of edge updates, and prints the top-10
// vertices before and after — demonstrating that maintenance costs
// milliseconds, not a recomputation.

#include <cstdio>

#include "analysis/topk.h"
#include "core/dynamic_ppr.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "util/args.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Build a graph (any edge source works; here: a power-law R-MAT).
  dppr::RmatOptions gen;
  gen.scale = 12;
  gen.avg_degree = 12;
  gen.seed = 7;
  dppr::DynamicGraph graph =
      dppr::DynamicGraph::FromEdges(dppr::GenerateRmat(gen), 1 << 12);
  std::printf("graph: %d vertices, %lld edges\n", graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()));

  // 2. Attach a DynamicPpr instance to the graph.
  dppr::PprOptions options;
  options.alpha = args.GetDouble("alpha", 0.15);
  options.eps = args.GetDouble("eps", 1e-7);
  options.variant = dppr::PushVariant::kOpt;  // Algorithm 4
  const dppr::VertexId source = 0;
  dppr::DynamicPpr ppr(&graph, source, options);

  // 3. Compute the vector from scratch once.
  dppr::WallTimer init_timer;
  ppr.Initialize();
  std::printf("initialize: %.2f ms (%lld pushes)\n", init_timer.Millis(),
              static_cast<long long>(ppr.last_stats().counters.push_ops));

  auto print_top = [&ppr](const char* title) {
    dppr::TablePrinter table({"rank", "vertex", "ppr"});
    auto top = dppr::TopK(ppr.Estimates(), 10);
    for (size_t i = 0; i < top.size(); ++i) {
      table.AddRow({dppr::TablePrinter::FmtInt(static_cast<int64_t>(i) + 1),
                    dppr::TablePrinter::FmtInt(top[i].id),
                    dppr::TablePrinter::FmtSci(top[i].score, 3)});
    }
    std::printf("\n%s\n", title);
    table.Print();
  };
  print_top("top-10 by PPR contribution to the source:");

  // 4. The graph changes: apply a batch of inserts and deletes. The
  //    estimates stay eps-accurate without recomputation.
  dppr::UpdateBatch batch;
  for (dppr::VertexId v = 1; v <= 200; ++v) {
    batch.push_back(dppr::EdgeUpdate::Insert(v % 64, source));
  }
  auto some_edges = graph.ToEdgeList();
  for (int i = 0; i < 100; ++i) {
    const dppr::Edge& e = some_edges[static_cast<size_t>(i) * 37];
    batch.push_back(dppr::EdgeUpdate::Delete(e.u, e.v));
  }
  dppr::WallTimer batch_timer;
  ppr.ApplyBatch(batch);
  std::printf("\napplied %zu updates in %.2f ms (%lld pushes, %d rounds)\n",
              batch.size(), batch_timer.Millis(),
              static_cast<long long>(ppr.last_stats().counters.push_ops),
              ppr.last_stats().pos_iterations +
                  ppr.last_stats().neg_iterations);
  print_top("top-10 after the batch:");

  std::printf("\nmax residual: %.3g (eps = %.3g)\n",
              ppr.state().MaxAbsResidual(), options.eps);
  return 0;
}
