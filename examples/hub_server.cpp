// Hub index server: maintain PPR vectors for many hub vertices and serve
// certified top-k queries while the graph streams — the use-case the
// paper names in §6 ("our approach is helpful for [HubPPR, Guo et al.]
// to maintain the indexed PPR vectors on dynamic graphs").
//
//   ./hub_server [--hubs=8] [--slides=12] [--k=5] [--seed=33]
//                [--checkpoint_dir=/tmp]
//
// Demonstrates the extension APIs end to end: PprIndex (shared graph,
// pooled engines, source-parallel maintenance), ValidateBatch (untrusted
// feed pre-flight), snapshot-based TopKWithGuarantee (certified rankings
// served from the published epoch, exactly what a concurrent query thread
// would read), and Save/LoadPprState + RestoreFromState (crash recovery
// drill). The stream permutation seed defaults to a fixed value so the
// printed output is reproducible run-to-run; pass --seed to vary it.

#include <cstdio>
#include <string>
#include <vector>

#include "core/batch_validation.h"
#include "core/query.h"
#include "core/serialization.h"
#include "gen/datasets.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/args.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto num_hubs = static_cast<size_t>(args.GetInt("hubs", 8));
  const int slides = static_cast<int>(args.GetInt("slides", 12));
  const int k = static_cast<int>(args.GetInt("k", 5));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 33));
  const std::string checkpoint_dir =
      args.GetString("checkpoint_dir", "/tmp");

  // Stream a pokec-like graph. The deterministic seed fixes the timestamp
  // permutation, so every run slides the same batches.
  dppr::DatasetSpec spec;
  (void)dppr::FindDataset("pokec", &spec);
  auto edges = dppr::GenerateDataset(spec, /*scale_shift=*/1);
  dppr::EdgeStream stream =
      dppr::EdgeStream::RandomPermutation(std::move(edges), seed);
  dppr::SlidingWindow window(&stream, 0.1);
  dppr::DynamicGraph graph = dppr::DynamicGraph::FromEdges(
      window.InitialEdges(), stream.NumVertices());

  // Hubs = the highest-out-degree vertices (the HubPPR recipe).
  std::vector<dppr::VertexId> hubs =
      dppr::TopOutDegreeVertices(graph, static_cast<dppr::VertexId>(num_hubs));
  dppr::IndexOptions options;
  options.ppr.eps = 1e-7;
  dppr::PprIndex index(&graph, hubs, options);

  dppr::WallTimer init_timer;
  index.Initialize();
  std::printf("hub index over %zu sources built in %.1f ms (|V|=%d, "
              "|E|=%lld, %d pooled engines)\n\n",
              index.NumSources(), init_timer.Millis(), graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()),
              index.NumPooledEngines());

  const dppr::EdgeCount batch_size = window.BatchForRatio(0.001);
  double maintain_ms = 0;
  for (int slide = 0; slide < slides && window.CanSlide(batch_size);
       ++slide) {
    dppr::UpdateBatch batch = window.NextBatch(batch_size);
    // Pre-flight: a production feed is untrusted.
    if (auto st = dppr::ValidateBatch(graph, batch); !st.ok()) {
      std::fprintf(stderr, "rejecting batch: %s\n", st.ToString().c_str());
      continue;
    }
    index.ApplyBatch(batch);
    maintain_ms += index.LastBatchSeconds() * 1e3;
  }
  std::printf("maintained %zu vectors through %d slides "
              "(%.2f ms/slide wall clock, all hubs per slide)\n\n",
              index.NumSources(), slides,
              maintain_ms / std::max(slides, 1));

  // Serve certified top-k for each hub from its published snapshot — the
  // same lock-free path a concurrent query thread would use.
  dppr::TablePrinter table(
      {"hub", "epoch", "top-1", "score",
       "certified_of_top" + std::to_string(k)});
  for (size_t h = 0; h < index.NumSources(); ++h) {
    dppr::GuaranteedTopK top = index.TopKWithGuarantee(h, k);
    table.AddRow({dppr::TablePrinter::FmtInt(index.SourceVertex(h)),
                  dppr::TablePrinter::FmtInt(
                      static_cast<int64_t>(index.Epoch(h))),
                  dppr::TablePrinter::FmtInt(top.entries[0].id),
                  dppr::TablePrinter::FmtSci(top.entries[0].score, 3),
                  dppr::TablePrinter::FmtInt(top.certain_members)});
  }
  table.Print();

  // Crash-recovery drill: checkpoint hub 0, reload, verify equality.
  const std::string path = checkpoint_dir + "/dppr_hub0.ckpt";
  if (auto st = dppr::SavePprState(path, index.Source(0).state());
      !st.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
    return 1;
  }
  dppr::PprState reloaded;
  if (auto st = dppr::LoadPprState(path, &reloaded); !st.ok()) {
    std::fprintf(stderr, "reload failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const bool identical = reloaded.p == index.Source(0).state().p &&
                         reloaded.r == index.Source(0).state().r;
  std::printf("\ncheckpoint drill (hub %d -> %s): %s\n",
              index.SourceVertex(0), path.c_str(),
              identical ? "reload identical" : "MISMATCH");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
