// Hub index server — the end-to-end serving demo: maintain PPR vectors
// for many hub vertices and serve certified top-k queries while the
// graph streams, the use-case the paper names in §6 ("our approach is
// helpful for [HubPPR, Guo et al.] to maintain the indexed PPR vectors on
// dynamic graphs").
//
//   ./hub_server [--hubs=8] [--workers=3] [--clients=2] [--slides=12]
//                [--k=5] [--seed=33] [--lru_cap=0] [--shards=1]
//                [--replicas=1] [--read_policy=primary|round_robin]
//                [--max_epoch_lag=-1] [--client_qps=0] [--affinity]
//                [--listen=PORT] [--join=host:p1+host:p2,host:p3]
//                [--data_dir=PATH] [--checkpoint_every=N]
//                [--adopt=host:p1,host:p2] [--verify_recovery]
//                [--estimator] [--walk_count=4]
//
// With --shards=1 (default) this drives a single PprService, exactly as
// in PR 2. With --shards=N it stands up a ShardedPprService instead: N
// full serving stacks behind the consistent-hash router, the same update
// stream fanned out to every shard, queries routed by source — and, to
// show elasticity, a shard is ADDED mid-run (migrating ~1/(N+1) of the
// hubs onto it) right after the usual hub churn. Every reported number
// then aggregates across shards, with latency percentiles computed from
// the merged per-shard samples.
//
// --replicas=R puts R replicas (1 primary + R-1 standbys, each a full
// serving stack) behind every in-process ring slot. The demo then also
// KILLS a primary mid-run — severing it under live load — and the slot
// keeps answering through the promoted standby; the failover counter in
// the final report proves it happened.
//
// The demo fronts either stack with a FrontDoor (below): a hot-source
// result cache keyed (source, query) that a feed-generation advance
// invalidates, per-client admission quotas (--client_qps, 0 = open),
// and optional session affinity (--affinity) for monotonic reads.
// --read_policy=round_robin distributes reads across the live replicas
// of each slot under the bounded-staleness contract (--max_epoch_lag
// epochs, negative = unenforced); see src/router/README.md.
//
// Fleet mode turns those N simulated shards into N processes:
//
//   hub_server --listen=0 [--seed=33]       # one SHARD process: builds
//       the same initial graph (same seed => identical replica), starts
//       an EMPTY PprService behind a PprServer, prints
//       "LISTENING <port>" and serves until SIGINT/SIGTERM;
//   hub_server --join=host:p1+host:p2,host:p3 [--shards=1]   # the
//       ROUTER process: builds its local shards as usual, then joins
//       each comma-separated GROUP as one ring slot — the first
//       host:port of a group is the slot's primary (hubs migrate onto it
//       OVER THE WIRE at unchanged epochs), every '+'-joined address
//       after it a standby synced from the primary — and runs the exact
//       demo the in-process sharded mode runs. A group with a standby
//       gets the same kill-the-primary treatment (the router severs its
//       connection; the process itself keeps running). --shards=0 makes
//       it a pure routing front-end (hubs are then added through the
//       ring after joining).
//
// The ring lives client-side (in the router process): shard processes
// know nothing about each other, exactly as in the paper-adjacent
// distributed PPR serving systems the README cites.
//
// Durability (src/storage/README.md): --data_dir attaches a durable
// store. A shard process (--listen) roots its WAL + checkpoints there
// directly; a router process gives each LOCAL backend its own
// subdirectory. On restart with the same --data_dir the process
// RECOVERS — checkpoint + log replay reproduce the exact pre-crash
// epochs — and prints a machine-readable
// "RECOVERED seq=<n> sources=<k> max_epoch=<e>" line (the cold-restart
// CI step parses it). --verify_recovery (--listen mode only) additionally
// rebuilds every recovered source from scratch on the recovered graph and
// fails the process if any estimate disagrees beyond the eps contract.
// --adopt=host:port re-admits such a RECOVERED (non-empty) shard into a
// router's ring: unlike --join, the joiner's sources survive — the ring
// is grown around them (ShardedPprService::AdoptRemoteShard).
//
// --estimator attaches the estimator subsystem (src/estimator/) to every
// serving stack: each hub is also registered as a reverse-push TARGET,
// and after the feed the demo serves reverse top-k ("who cares about this
// hub?") and single-pair queries — routed by TARGET in sharded mode, the
// mirror image of the by-source routing above. --walk_count sets the
// walks per vertex of the hybrid estimator's walk index (seeded from
// --seed, so every replica's index is bit-identical).
//
// The stream permutation seed defaults to a fixed value so the printed
// tables are reproducible run-to-run; pass --seed to vary it.

#include <csignal>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch_validation.h"
#include "gen/datasets.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "net/ppr_server.h"
#include "router/shard_backend.h"
#include "router/sharded_service.h"
#include "server/ppr_service.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/args.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true, std::memory_order_release); }

using Endpoint = std::pair<std::string, int>;
/// One ring slot's worth of remote addresses: [primary, standbys...].
using EndpointGroup = std::vector<Endpoint>;

/// Splits "host:p1+host:p2,host:p3" into replica groups (',' separates
/// slots, '+' separates a slot's primary from its standbys); false on a
/// malformed token.
bool ParseEndpointGroups(const std::string& csv,
                         std::vector<EndpointGroup>* out) {
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    const std::string group_token = csv.substr(begin, end - begin);
    EndpointGroup group;
    size_t member_begin = 0;
    while (member_begin <= group_token.size()) {
      size_t member_end = group_token.find('+', member_begin);
      if (member_end == std::string::npos) member_end = group_token.size();
      const std::string token =
          group_token.substr(member_begin, member_end - member_begin);
      const size_t colon = token.rfind(':');
      if (colon == 0 || colon == std::string::npos ||
          colon + 1 >= token.size()) {
        return false;
      }
      try {
        group.emplace_back(token.substr(0, colon),
                           std::stoi(token.substr(colon + 1)));
      } catch (const std::exception&) {
        return false;
      }
      member_begin = member_end + 1;
    }
    if (group.empty()) return false;
    out->push_back(std::move(group));
    begin = end + 1;
  }
  return !out->empty();
}

/// The demo logic is identical for the unsharded and the sharded stack;
/// this facade is the few calls it needs from either. Reads take an
/// affinity token (0 = none; the unsharded stack ignores it).
struct ServiceFacade {
  std::function<dppr::QueryResponse(dppr::VertexId, dppr::VertexId,
                                    uint64_t)>
      query;
  std::function<dppr::QueryResponse(dppr::VertexId, int, uint64_t)> topk;
  std::function<dppr::MaintResponse(dppr::UpdateBatch)> apply;
  std::function<dppr::MaintResponse(dppr::VertexId)> add_source;
  std::function<dppr::MaintResponse(dppr::VertexId)> remove_source;
  std::function<std::vector<dppr::VertexId>()> sources;
  std::function<bool(dppr::VertexId)> has_source;
  std::function<dppr::MetricsReport()> metrics;
  // Estimator surface (wired only with --estimator; routed by TARGET in
  // sharded mode).
  std::function<dppr::MaintResponse(dppr::VertexId)> add_target;
  std::function<dppr::QueryResponse(dppr::VertexId, dppr::VertexId)>
      query_pair;
  std::function<dppr::QueryResponse(dppr::VertexId, dppr::VertexId)>
      hybrid_pair;
  std::function<dppr::QueryResponse(dppr::VertexId, int)> reverse_topk;
};

/// \brief The demo's front door: what a real serving tier puts between
/// untrusted clients and the router.
///
///   * Hot-source result cache, keyed (source, query). An entry is valid
///     for exactly one FEED GENERATION — every applied batch or hub
///     churn advances the generation and thereby drops every cached
///     answer. Epochs only move when the feed does, so within a
///     generation a cached response is indistinguishable from a fresh
///     one.
///   * Per-client admission: a token bucket per client id (--client_qps
///     tokens/s, burst of one second's worth; 0 disables). Work above
///     the quota is refused kRejected BEFORE it reaches the service —
///     the cheapest shed there is.
///   * Session affinity (--affinity): client c reads with token c+1,
///     pinning its session to one replica for monotonic epochs.
///     Affinity reads BYPASS the cache: a cache line shared across
///     sessions could serve a client an answer older than one it
///     already saw, which is exactly what affinity promises away.
class FrontDoor {
 public:
  FrontDoor(const ServiceFacade* facade, double client_qps, int clients,
            bool affinity)
      : facade_(facade),
        client_qps_(client_qps),
        affinity_(affinity),
        buckets_(static_cast<size_t>(clients)) {
    for (Bucket& bucket : buckets_) bucket.tokens = client_qps;
  }

  /// The feed moved (batch applied / hub churned): every cached answer
  /// is now a generation behind and will be re-fetched on next touch.
  void AdvanceGeneration() {
    generation_.fetch_add(1, std::memory_order_release);
  }

  dppr::QueryResponse Query(int client, dppr::VertexId s,
                            dppr::VertexId v) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(s)) << 33) |
        static_cast<uint32_t>(v);
    return Serve(client, key, [&](uint64_t token) {
      return facade_->query(s, v, token);
    });
  }

  dppr::QueryResponse TopK(int client, dppr::VertexId s, int k) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(s)) << 33) |
        (uint64_t{1} << 32) | static_cast<uint32_t>(k);
    return Serve(client, key,
                 [&](uint64_t token) { return facade_->topk(s, k, token); });
  }

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Bucket {
    double tokens = 0.0;
    dppr::WallTimer since_refill;
  };

  struct Entry {
    uint64_t generation = 0;
    dppr::QueryResponse response;
  };

  /// Refill-on-demand token bucket. Each client thread owns its bucket,
  /// so no lock: admission never contends with other clients.
  bool Admit(int client) {
    if (client_qps_ <= 0) return true;
    Bucket& bucket = buckets_[static_cast<size_t>(client)];
    bucket.tokens = std::min(
        client_qps_,
        bucket.tokens + bucket.since_refill.Seconds() * client_qps_);
    bucket.since_refill.Restart();
    if (bucket.tokens < 1.0) return false;
    bucket.tokens -= 1.0;
    return true;
  }

  template <typename Issue>
  dppr::QueryResponse Serve(int client, uint64_t key, Issue issue) {
    if (!Admit(client)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      dppr::QueryResponse refused;
      refused.status = dppr::RequestStatus::kRejected;
      return refused;
    }
    const uint64_t token =
        affinity_ ? static_cast<uint64_t>(client) + 1 : 0;
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    if (token == 0) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end() && it->second.generation == gen) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.response;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    dppr::QueryResponse response = issue(token);
    if (token == 0 && response.status == dppr::RequestStatus::kOk) {
      std::lock_guard<std::mutex> lock(mu_);
      cache_[key] = Entry{gen, response};
    }
    return response;
  }

  const ServiceFacade* facade_;
  const double client_qps_;
  const bool affinity_;
  std::vector<Bucket> buckets_;
  std::atomic<uint64_t> generation_{0};
  std::mutex mu_;
  std::unordered_map<uint64_t, Entry> cache_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> rejected_{0};
};

}  // namespace

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto num_hubs = static_cast<dppr::VertexId>(args.GetInt("hubs", 8));
  const int workers = static_cast<int>(args.GetInt("workers", 3));
  const int num_clients = static_cast<int>(args.GetInt("clients", 2));
  const int slides = static_cast<int>(args.GetInt("slides", 12));
  const int k = static_cast<int>(args.GetInt("k", 5));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 33));
  const auto lru_cap = static_cast<size_t>(args.GetInt("lru_cap", 0));
  const bool listen_mode = args.Has("listen");
  const int listen_port = static_cast<int>(args.GetInt("listen", 0));
  const std::string join_csv = args.GetString("join", "");
  const std::string adopt_csv = args.GetString("adopt", "");
  const std::string data_dir = args.GetString("data_dir", "");
  const bool verify_recovery = args.GetBool("verify_recovery", false);
  dppr::storage::DurableStoreOptions durability;
  durability.checkpoint_every =
      static_cast<uint64_t>(args.GetInt("checkpoint_every", 0));
  const int num_shards = static_cast<int>(args.GetInt("shards", 1));
  const int replicas = static_cast<int>(args.GetInt("replicas", 1));
  const std::string variant_name = args.GetString("variant", "adaptive");
  const bool numa = args.GetBool("numa", false);
  const auto max_epoch_lag =
      static_cast<int64_t>(args.GetInt("max_epoch_lag", -1));
  const double client_qps = args.GetDouble("client_qps", 0.0);
  const bool affinity = args.GetBool("affinity", false);
  const bool estimator = args.GetBool("estimator", false);
  const int walk_count = static_cast<int>(args.GetInt("walk_count", 4));
  dppr::ReadPolicy read_policy = dppr::ReadPolicy::kPrimaryOnly;
  if (!dppr::ParseReadPolicy(args.GetString("read_policy", "primary"),
                             &read_policy)) {
    std::fprintf(stderr, "unknown --read_policy value\n");
    return 1;
  }
  if (replicas < 1) {
    std::fprintf(stderr, "--replicas must be >= 1\n");
    return 1;
  }
  std::vector<EndpointGroup> join_groups;
  if (!join_csv.empty() && !ParseEndpointGroups(join_csv, &join_groups)) {
    std::fprintf(stderr,
                 "malformed --join (want host:port groups, ',' between "
                 "slots, '+' before standbys)\n");
    return 1;
  }
  std::vector<EndpointGroup> adopt_groups;
  if (!adopt_csv.empty() && !ParseEndpointGroups(adopt_csv, &adopt_groups)) {
    std::fprintf(stderr, "malformed --adopt (want host:port, ',' between "
                         "shards)\n");
    return 1;
  }
  for (const EndpointGroup& group : adopt_groups) {
    if (group.size() != 1) {
      std::fprintf(stderr, "--adopt takes single endpoints (a recovered "
                           "shard re-joins alone; attach standbys after "
                           "with --join semantics)\n");
      return 1;
    }
  }
  if (listen_mode && (!join_groups.empty() || !adopt_groups.empty())) {
    std::fprintf(stderr, "--listen and --join/--adopt are different "
                         "processes\n");
    return 1;
  }

  // Stream a pokec-like graph. The deterministic seed fixes the timestamp
  // permutation, so every run slides the same batches.
  dppr::DatasetSpec spec;
  (void)dppr::FindDataset("pokec", &spec);
  auto edges = dppr::GenerateDataset(spec, /*scale_shift=*/1);
  dppr::EdgeStream stream =
      dppr::EdgeStream::RandomPermutation(std::move(edges), seed);
  dppr::SlidingWindow window(&stream, 0.1);
  const std::vector<dppr::Edge> initial = window.InitialEdges();
  const dppr::VertexId num_vertices = stream.NumVertices();
  dppr::DynamicGraph graph =
      dppr::DynamicGraph::FromEdges(initial, num_vertices);

  // ONE options block for every mode — a fleet where shard processes and
  // the router disagree on eps would serve answers with different
  // accuracy bounds than the equivalence checks assume.
  dppr::IndexOptions options;
  options.ppr.eps = 1e-7;
  options.max_materialized_sources = lru_cap;
  if (auto st = dppr::ParsePushVariant(variant_name, &options.ppr.variant);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  options.numa_aware_engines = numa;
  dppr::ServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.materialize_wait = std::chrono::milliseconds(500);
  // Part of the ONE shared options block above: a fleet where the router
  // and the shard processes disagreed on walk seeding would break the
  // cross-replica determinism the estimator's placement relies on.
  service_options.estimator.enabled = estimator;
  service_options.estimator.walks_per_vertex = walk_count;
  service_options.estimator.seed = seed;

  if (listen_mode) {
    // SHARD PROCESS: the same graph replica (same seed => same bytes),
    // an empty source set (the router migrates or adds hubs through the
    // ring), one serving stack, and the network skin in front of it.
    // With --data_dir the stack is durable — and if the directory holds
    // a prior incarnation's state, that state WINS over the seed:
    // checkpoint restore + log replay reproduce the exact pre-crash
    // graph, source set, and epochs (LocalShardBackend recovery).
    dppr::LocalShardBackend backend(initial, num_vertices, {}, options,
                                    service_options, data_dir, durability);
    backend.Start();
    if (backend.recovered()) {
      // Machine-readable recovery line (the cold-restart CI step parses
      // it and asserts the epoch never regresses across a SIGKILL).
      std::printf("RECOVERED seq=%llu sources=%zu max_epoch=%llu\n",
                  static_cast<unsigned long long>(
                      backend.store()->feed_seq()),
                  backend.NumSources(),
                  static_cast<unsigned long long>(backend.MaxEpoch()));
      std::fflush(stdout);
    }
    if (verify_recovery && backend.recovered()) {
      // Oracle equivalence from disk: rebuild every recovered source
      // FROM SCRATCH on the recovered graph and require the replayed
      // estimates to agree within the eps contract (two eps-accurate
      // approximations of the same vector differ by at most 2*eps).
      const dppr::PprIndex* live = backend.service()->index();
      dppr::DynamicGraph oracle_graph = dppr::DynamicGraph::FromEdges(
          live->graph()->ToEdgeList(), live->graph()->NumVertices());
      dppr::PprIndex oracle(&oracle_graph, live->Sources(), options);
      oracle.Initialize();
      int64_t mismatches = 0;
      for (size_t i = 0; i < oracle.NumSources(); ++i) {
        const dppr::VertexId s = oracle.SourceVertex(i);
        const dppr::GuaranteedTopK fresh = oracle.TopKWithGuarantee(i, k);
        for (const dppr::ScoredVertex& entry : fresh.entries) {
          const dppr::SourceReadResult got =
              live->QueryVertexForSource(s, entry.id);
          if (got.status != dppr::SourceReadResult::Status::kOk ||
              std::fabs(got.estimate.value - entry.score) >
                  2 * options.ppr.eps) {
            ++mismatches;
          }
        }
      }
      std::printf("RECOVERY_VERIFIED sources=%zu mismatches=%lld\n",
                  oracle.NumSources(),
                  static_cast<long long>(mismatches));
      std::fflush(stdout);
      if (mismatches != 0) return 1;
    }
    dppr::net::PprServerOptions server_options;
    server_options.port = listen_port;
    dppr::net::PprServer server(backend.service(), server_options);
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    // Machine-readable readiness line (the fleet tests parse it).
    std::printf("LISTENING %d\n", server.port());
    std::fflush(stdout);
    while (!g_shutdown.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.Stop();  // before the service, so in-flight handlers resolve
    const dppr::MetricsReport report = backend.Metrics();
    backend.Stop();
    std::printf("%s\n", report.ToString().c_str());
    std::printf("shard served %lld queries, %lld protocol errors\n",
                static_cast<long long>(report.queries_completed),
                static_cast<long long>(server.protocol_errors()));
    return 0;
  }

  // Hubs = the highest-out-degree vertices (the HubPPR recipe). The next
  // vertex in that ranking is the "rising hub" promoted mid-run.
  std::vector<dppr::VertexId> ranked =
      dppr::TopOutDegreeVertices(graph, num_hubs + 1);
  const dppr::VertexId rising_hub = ranked.back();
  std::vector<dppr::VertexId> hubs(ranked.begin(), ranked.end() - 1);

  // Pre-flight the whole stream before serving starts: a production feed
  // is untrusted, and validating against the live graph would race the
  // maintenance thread. Validation interleaves with a scratch graph.
  const dppr::EdgeCount batch_size = window.BatchForRatio(0.001);
  std::vector<dppr::UpdateBatch> batches;
  {
    dppr::DynamicGraph preflight = dppr::DynamicGraph::FromEdges(
        graph.ToEdgeList(), graph.NumVertices());
    for (int s = 0; s < slides && window.CanSlide(batch_size); ++s) {
      dppr::UpdateBatch batch = window.NextBatch(batch_size);
      if (auto st = dppr::ValidateBatch(preflight, batch); !st.ok()) {
        std::fprintf(stderr, "rejecting batch %d: %s\n", s,
                     st.ToString().c_str());
        continue;
      }
      for (const dppr::EdgeUpdate& update : batch) preflight.Apply(update);
      batches.push_back(std::move(batch));
    }
  }

  // Stand up either serving stack behind the facade (options were built
  // once, above the --listen branch, so every process of a fleet agrees).
  // The unsharded stack is a LocalShardBackend — the same graph + index +
  // service triple as before, but with the durable tier (and its recovery
  // path) attached when --data_dir is set.
  std::unique_ptr<dppr::LocalShardBackend> local;
  dppr::PprService* service = nullptr;
  dppr::PprIndex* index = nullptr;
  std::unique_ptr<dppr::ShardedPprService> sharded;
  ServiceFacade facade;
  dppr::WallTimer init_timer;
  if (num_shards <= 1 && replicas <= 1 && join_groups.empty() &&
      adopt_groups.empty()) {
    local = std::make_unique<dppr::LocalShardBackend>(
        initial, num_vertices, hubs, options, service_options, data_dir,
        durability);
    local->Start();
    service = local->service();
    index = service->index();
    if (local->recovered()) {
      std::printf("RECOVERED seq=%llu sources=%zu max_epoch=%llu\n",
                  static_cast<unsigned long long>(
                      local->store()->feed_seq()),
                  local->NumSources(),
                  static_cast<unsigned long long>(local->MaxEpoch()));
    }
    std::printf("hub index over %zu sources built in %.1f ms (|V|=%d, "
                "|E|=%lld, %zu materialized, %d pooled engines)\n\n",
                index->NumSources(), init_timer.Millis(),
                graph.NumVertices(),
                static_cast<long long>(graph.NumEdges()),
                index->NumMaterializedSources(), index->NumPooledEngines());
    facade = {
        [&](dppr::VertexId s, dppr::VertexId v, uint64_t) {
          return service->Query(s, v);
        },
        [&](dppr::VertexId s, int kk, uint64_t) {
          return service->TopK(s, kk);
        },
        [&](dppr::UpdateBatch b) {
          return service->ApplyUpdatesAsync(std::move(b)).get();
        },
        [&](dppr::VertexId s) { return service->AddSourceAsync(s).get(); },
        [&](dppr::VertexId s) {
          return service->RemoveSourceAsync(s).get();
        },
        [&] { return index->Sources(); },
        [&](dppr::VertexId s) { return index->HasSource(s); },
        [&] { return service->Metrics(); },
        [&](dppr::VertexId t) { return service->AddTargetAsync(t).get(); },
        [&](dppr::VertexId s, dppr::VertexId t) {
          return service->QueryPairAsync(s, t).get();
        },
        [&](dppr::VertexId s, dppr::VertexId t) {
          return service->HybridPairAsync(s, t).get();
        },
        [&](dppr::VertexId t, int kk) {
          return service->ReverseTopKAsync(t, kk).get();
        },
    };
  } else {
    dppr::ShardedServiceOptions sharded_options;
    sharded_options.num_shards = num_shards;
    sharded_options.replicas = replicas;
    sharded_options.index = options;
    sharded_options.service = service_options;
    sharded_options.read_policy = read_policy;
    sharded_options.max_epoch_lag = max_epoch_lag;
    sharded_options.data_dir = data_dir;  // per-backend subdirs inside
    sharded_options.durability = durability;
    // Periodic drift repair for standbys: cheap (a probe per slot) and
    // inert with single-replica slots.
    sharded_options.anti_entropy_interval = std::chrono::milliseconds(250);
    // A pure routing front-end (--shards=0) owns no shard to place the
    // initial hubs on; they are added through the ring after the joins.
    const bool hubs_at_construction = num_shards > 0;
    sharded = std::make_unique<dppr::ShardedPprService>(
        initial, num_vertices,
        hubs_at_construction ? hubs : std::vector<dppr::VertexId>{},
        sharded_options);
    sharded->Start();
    for (const EndpointGroup& group : join_groups) {
      const auto& [host, port] = group.front();
      const int joined = sharded->AddRemoteShard(host, port);
      if (joined < 0) {
        std::fprintf(stderr,
                     "could not join remote shard %s:%d (unreachable, "
                     "non-empty, or serving a different graph)\n",
                     host.c_str(), port);
        return 1;
      }
      std::printf("joined remote shard %s:%d as shard %d\n", host.c_str(),
                  port, joined);
      for (size_t standby = 1; standby < group.size(); ++standby) {
        const auto& [sb_host, sb_port] = group[standby];
        const int replica =
            sharded->AddRemoteReplica(joined, sb_host, sb_port);
        if (replica < 0) {
          std::fprintf(stderr,
                       "could not attach standby %s:%d to shard %d\n",
                       sb_host.c_str(), sb_port, joined);
          return 1;
        }
        std::printf("attached standby %s:%d to shard %d (replica %d)\n",
                    sb_host.c_str(), sb_port, joined, replica);
      }
    }
    // Re-admit recovered shards. Their sources SURVIVE the join (the
    // ring grows around them), so the hub-add loop below skips anything
    // an adoptee already serves.
    for (const EndpointGroup& group : adopt_groups) {
      const auto& [host, port] = group.front();
      const int adopted = sharded->AdoptRemoteShard(host, port);
      if (adopted < 0) {
        std::fprintf(stderr,
                     "could not adopt recovered shard %s:%d (unreachable, "
                     "different graph, or a live slot still serves one of "
                     "its sources)\n",
                     host.c_str(), port);
        return 1;
      }
      std::printf("ADOPTED %s:%d as shard %d sources=%zu\n", host.c_str(),
                  port, adopted,
                  sharded->SourcesOnShard(adopted).size());
      std::fflush(stdout);
    }
    if (!hubs_at_construction) {
      for (dppr::VertexId hub : hubs) {
        if (sharded->HasSource(hub)) continue;  // adopted shard owns it
        if (sharded->AddSource(hub).status != dppr::RequestStatus::kOk) {
          std::fprintf(stderr, "could not add hub %d\n", hub);
          return 1;
        }
      }
    }
    std::printf("sharded hub index over %zu sources across %zu shards "
                "built in %.1f ms (|V|=%d)\n",
                sharded->NumSources(), sharded->NumShards(),
                init_timer.Millis(), num_vertices);
    for (int shard_id : sharded->ShardIds()) {
      std::printf("  shard %d owns %zu hubs (%zu replicas)\n", shard_id,
                  sharded->SourcesOnShard(shard_id).size(),
                  sharded->NumReplicas(shard_id));
    }
    std::printf("\n");
    facade = {
        [&](dppr::VertexId s, dppr::VertexId v, uint64_t token) {
          return sharded->Query(s, v, /*deadline_ms=*/0, token);
        },
        [&](dppr::VertexId s, int kk, uint64_t token) {
          return sharded->TopK(s, kk, /*deadline_ms=*/0, token);
        },
        [&](dppr::UpdateBatch b) {
          return sharded->ApplyUpdates(std::move(b));
        },
        [&](dppr::VertexId s) { return sharded->AddSource(s); },
        [&](dppr::VertexId s) { return sharded->RemoveSource(s); },
        [&] { return sharded->Sources(); },
        [&](dppr::VertexId s) { return sharded->HasSource(s); },
        [&] { return sharded->Metrics(); },
        [&](dppr::VertexId t) { return sharded->AddTarget(t); },
        [&](dppr::VertexId s, dppr::VertexId t) {
          return sharded->QueryPair(s, t);
        },
        [&](dppr::VertexId s, dppr::VertexId t) {
          return sharded->HybridPair(s, t);
        },
        [&](dppr::VertexId t, int kk) {
          return sharded->ReverseTopK(t, kk);
        },
    };
  }

  // Every hub doubles as a reverse-push target: the estimator then
  // answers "who cares about this hub?" (reverse top-k) next to the
  // forward "what does this hub care about?" the index already serves.
  if (estimator) {
    for (dppr::VertexId hub : hubs) {
      const dppr::MaintResponse added = facade.add_target(hub);
      if (added.status != dppr::RequestStatus::kOk) {
        std::fprintf(stderr, "could not register target %d: %s\n", hub,
                     dppr::RequestStatusName(added.status));
        return 1;
      }
    }
    std::printf("estimator on: %zu targets registered, %d walks/vertex\n\n",
                hubs.size(), walk_count);
  }

  // Clients: closed-loop point + top-k queries over the hub set while
  // the stream applies, all THROUGH the front door — cache, admission,
  // affinity. Sanity-checked on the fly: a hub's own estimate can never
  // drop below alpha - eps, and an affinity client's epochs must never
  // regress per source.
  FrontDoor front_door(&facade, client_qps, num_clients, affinity);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad_responses{0};
  std::atomic<int64_t> epoch_regressions{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      std::unordered_map<dppr::VertexId, uint64_t> last_epoch;
      int64_t i = c;
      while (!stop.load(std::memory_order_acquire)) {
        const dppr::VertexId hub =
            hubs[static_cast<size_t>(i) % hubs.size()];
        dppr::QueryResponse response =
            i % 3 == 0 ? front_door.TopK(c, hub, k)
                       : front_door.Query(c, hub, hub);
        if (response.status == dppr::RequestStatus::kRejected) {
          // Over quota: back off instead of hammering the door.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        if (response.status == dppr::RequestStatus::kOk) {
          if (i % 3 != 0 &&
              response.estimate.value <
                  options.ppr.alpha - 2 * options.ppr.eps) {
            bad_responses.fetch_add(1);
          }
          if (affinity) {
            uint64_t& seen = last_epoch[hub];
            if (response.epoch < seen) epoch_regressions.fetch_add(1);
            seen = std::max(seen, response.epoch);
          }
        }
        ++i;
      }
    });
  }

  // Feeder: the maintenance stream, plus a hub-set change mid-run —
  // promote the rising hub, retire the coldest original one — and, in
  // sharded mode, a topology change: grow the fleet by one shard. The
  // churn is a lambda so a read-only run (--slides=0 — the shape the
  // adopt demo needs, because re-feeding seeded batches to a RECOVERED
  // shard would replay deletions its graph already applied) still
  // exercises it once, after the empty feed.
  const auto run_hub_churn = [&] {
    {
      const dppr::MaintResponse risen = facade.add_source(rising_hub);
      const dppr::MaintResponse retired = facade.remove_source(hubs.back());
      front_door.AdvanceGeneration();  // the hub set changed too
      std::printf("mid-run hub churn: +%d (rising, %s), -%d (retired, %s)\n",
                  rising_hub, dppr::RequestStatusName(risen.status),
                  hubs.back(), dppr::RequestStatusName(retired.status));
      if (sharded != nullptr) {
        // Local growth needs a local graph replica to clone; a pure
        // routing front-end (--shards=0 --join=...) has none and skips
        // the demo growth.
        const int grown = sharded->AddShard();
        if (grown >= 0) {
          const dppr::RouterReport report = sharded->Report();
          std::printf("mid-run shard growth: +shard %d (%lld sources "
                      "migrated, %lld blob bytes, %lld targets re-homed)\n",
                      grown,
                      static_cast<long long>(report.sources_migrated),
                      static_cast<long long>(report.migration_bytes),
                      static_cast<long long>(report.targets_migrated));
        }
        // Kill-the-primary demo: sever the first replicated slot's
        // primary UNDER LIVE LOAD (clients keep querying). The standby
        // is promoted on the first kUnavailable answer; nobody above the
        // replica set notices except the failover counter.
        for (int slot : sharded->ShardIds()) {
          if (sharded->NumReplicas(slot) < 2) continue;
          const int primary = sharded->PrimaryOf(slot);
          if (sharded->SeverReplica(slot, primary)) {
            std::printf("mid-run primary kill: severed shard %d's "
                        "replica %d; standby takes over\n",
                        slot, primary);
          }
          break;
        }
      }
      std::printf("\n");
    }
  };
  for (size_t b = 0; b < batches.size(); ++b) {
    dppr::MaintResponse applied = facade.apply(batches[b]);
    if (applied.status != dppr::RequestStatus::kOk) {
      std::fprintf(stderr, "batch %zu not applied: %s\n", b,
                   dppr::RequestStatusName(applied.status));
    }
    // The feed moved: every cached front-door answer is now stale.
    front_door.AdvanceGeneration();
    if (b == batches.size() / 2) run_hub_churn();
  }
  if (batches.empty()) run_hub_churn();
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  // Serve one certified top-k per current hub through the service — the
  // same snapshot path the client threads used.
  dppr::TablePrinter table(
      {"hub", "epoch", "top-1", "score",
       "certified_of_top" + std::to_string(k)});
  uint64_t fleet_max_epoch = 0;
  for (dppr::VertexId hub : facade.sources()) {
    dppr::QueryResponse top = facade.topk(hub, k, /*affinity=*/0);
    if (top.status != dppr::RequestStatus::kOk) {
      std::fprintf(stderr, "top-k for hub %d: %s\n", hub,
                   dppr::RequestStatusName(top.status));
      continue;
    }
    fleet_max_epoch = std::max(fleet_max_epoch, top.epoch);
    table.AddRow({dppr::TablePrinter::FmtInt(hub),
                  dppr::TablePrinter::FmtInt(
                      static_cast<int64_t>(top.epoch)),
                  dppr::TablePrinter::FmtInt(top.topk.entries[0].id),
                  dppr::TablePrinter::FmtSci(top.topk.entries[0].score, 3),
                  dppr::TablePrinter::FmtInt(top.topk.certain_members)});
  }
  table.Print();
  // Machine-readable feed frontier (the cold-restart CI step compares a
  // shard's post-restart RECOVERED epoch against this — WAL-before-apply
  // means recovery may land AT or AHEAD of it, never behind).
  std::printf("FLEET max_epoch=%llu\n",
              static_cast<unsigned long long>(fleet_max_epoch));

  // The estimator's read side: reverse top-k per hub ("who cares about
  // this hub?"), then one deterministic + one hybrid single-pair estimate
  // between the two hottest hubs. The hybrid answer must land inside the
  // deterministic answer's +/- eps interval by construction — counted as
  // an error otherwise.
  int64_t estimator_errors = 0;
  if (estimator) {
    dppr::TablePrinter reverse_table(
        {"target", "epoch", "top-1 source", "score"});
    for (dppr::VertexId hub : hubs) {
      const dppr::QueryResponse reverse = facade.reverse_topk(hub, k);
      if (reverse.status != dppr::RequestStatus::kOk) {
        std::fprintf(stderr, "reverse top-k for target %d: %s\n", hub,
                     dppr::RequestStatusName(reverse.status));
        ++estimator_errors;
        continue;
      }
      const bool any = !reverse.topk.entries.empty();
      reverse_table.AddRow(
          {dppr::TablePrinter::FmtInt(hub),
           dppr::TablePrinter::FmtInt(static_cast<int64_t>(reverse.epoch)),
           any ? dppr::TablePrinter::FmtInt(reverse.topk.entries[0].id)
               : "-",
           any ? dppr::TablePrinter::FmtSci(reverse.topk.entries[0].score, 3)
               : "-"});
    }
    std::printf("\nreverse top-%d (who cares about each hub):\n", k);
    reverse_table.Print();
    if (hubs.size() >= 2) {
      const dppr::VertexId s = hubs[0];
      const dppr::VertexId t = hubs[1];
      const dppr::QueryResponse pair = facade.query_pair(s, t);
      const dppr::QueryResponse hybrid = facade.hybrid_pair(s, t);
      if (pair.status != dppr::RequestStatus::kOk ||
          hybrid.status != dppr::RequestStatus::kOk) {
        std::fprintf(stderr, "pair query %d->%d failed\n", s, t);
        ++estimator_errors;
      } else {
        if (std::fabs(hybrid.estimate.value - pair.estimate.value) >
            pair.estimate.upper - pair.estimate.value) {
          ++estimator_errors;  // hybrid escaped the deterministic interval
        }
        std::printf("pair pi_%d(%d): reverse-push %.3e (+/- %.1e), "
                    "hybrid %.3e\n",
                    s, t, pair.estimate.value,
                    pair.estimate.upper - pair.estimate.value,
                    hybrid.estimate.value);
      }
    }
  }

  if (sharded != nullptr) {
    // The scatter-gather view: the globally best (hub, vertex) scores.
    const dppr::GlobalTopKResult global = sharded->GlobalTopK(k);
    std::printf("\nglobal top-%d across all shards:", k);
    for (const dppr::GlobalTopKEntry& entry : global.entries) {
      std::printf(" %d->%d(%.2e)", entry.source, entry.entry.id,
                  entry.entry.score);
    }
    std::printf("\n");
  }
  // Gather BEFORE Stop: a stopped fleet has disconnected its remote
  // shards, and their metrics/source sets are unreachable afterwards.
  const dppr::MetricsReport report = facade.metrics();
  const bool hub_set_ok =
      facade.has_source(rising_hub) && !facade.has_source(hubs.back());
  if (sharded != nullptr) {
    const dppr::RouterReport router_report = sharded->Report();
    std::printf("\nreplication: %lld failovers, %lld standby syncs "
                "(%lld bytes), %lld update retries\n",
                static_cast<long long>(router_report.failovers),
                static_cast<long long>(router_report.standby_syncs),
                static_cast<long long>(router_report.sync_bytes),
                static_cast<long long>(router_report.update_retries));
    std::printf("read distribution (%s): %lld primary reads, %lld "
                "standby reads, %lld stale retries",
                dppr::ReadPolicyName(read_policy),
                static_cast<long long>(router_report.primary_reads),
                static_cast<long long>(router_report.standby_reads),
                static_cast<long long>(router_report.stale_retries));
    if (router_report.staleness.Count() > 0) {
      std::printf("; staleness epochs p50=%.0f p99=%.0f max=%.0f",
                  router_report.staleness.Percentile(50),
                  router_report.staleness.Percentile(99),
                  router_report.staleness.Max());
    }
    std::printf("\n");
    sharded->Stop();
  } else {
    local->Stop();
  }
  std::printf("\n%s\n", report.ToString().c_str());
  std::printf("\nfront door: %lld cache hits, %lld misses, %lld "
              "admission rejections%s\n",
              static_cast<long long>(front_door.hits()),
              static_cast<long long>(front_door.misses()),
              static_cast<long long>(front_door.rejected()),
              affinity ? " (session affinity on)" : "");
  std::printf("hub churn applied: %s; bad responses: %lld; epoch "
              "regressions: %lld\n",
              hub_set_ok ? "yes" : "NO",
              static_cast<long long>(bad_responses.load()),
              static_cast<long long>(epoch_regressions.load()));
  return (hub_set_ok && bad_responses.load() == 0 &&
          epoch_regressions.load() == 0 && estimator_errors == 0 &&
          report.queries_completed > 0)
             ? 0
             : 1;
}
