// Hub index server — the end-to-end serving demo: maintain PPR vectors
// for many hub vertices and serve certified top-k queries while the
// graph streams, the use-case the paper names in §6 ("our approach is
// helpful for [HubPPR, Guo et al.] to maintain the indexed PPR vectors on
// dynamic graphs").
//
//   ./hub_server [--hubs=8] [--workers=3] [--clients=2] [--slides=12]
//                [--k=5] [--seed=33] [--lru_cap=0] [--shards=1]
//
// With --shards=1 (default) this drives a single PprService, exactly as
// in PR 2. With --shards=N it stands up a ShardedPprService instead: N
// full serving stacks behind the consistent-hash router, the same update
// stream fanned out to every shard, queries routed by source — and, to
// show elasticity, a shard is ADDED mid-run (migrating ~1/(N+1) of the
// hubs onto it) right after the usual hub churn. Every reported number
// then aggregates across shards, with latency percentiles computed from
// the merged per-shard samples.
//
// The stream permutation seed defaults to a fixed value so the printed
// tables are reproducible run-to-run; pass --seed to vary it.

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_validation.h"
#include "gen/datasets.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "router/sharded_service.h"
#include "server/ppr_service.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/args.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

/// The demo logic is identical for the unsharded and the sharded stack;
/// this facade is the few calls it needs from either.
struct ServiceFacade {
  std::function<dppr::QueryResponse(dppr::VertexId, dppr::VertexId)> query;
  std::function<dppr::QueryResponse(dppr::VertexId, int)> topk;
  std::function<dppr::MaintResponse(dppr::UpdateBatch)> apply;
  std::function<dppr::MaintResponse(dppr::VertexId)> add_source;
  std::function<dppr::MaintResponse(dppr::VertexId)> remove_source;
  std::function<std::vector<dppr::VertexId>()> sources;
  std::function<bool(dppr::VertexId)> has_source;
  std::function<dppr::MetricsReport()> metrics;
};

}  // namespace

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto num_hubs = static_cast<dppr::VertexId>(args.GetInt("hubs", 8));
  const int workers = static_cast<int>(args.GetInt("workers", 3));
  const int num_clients = static_cast<int>(args.GetInt("clients", 2));
  const int slides = static_cast<int>(args.GetInt("slides", 12));
  const int k = static_cast<int>(args.GetInt("k", 5));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 33));
  const auto lru_cap = static_cast<size_t>(args.GetInt("lru_cap", 0));
  const int num_shards = static_cast<int>(args.GetInt("shards", 1));

  // Stream a pokec-like graph. The deterministic seed fixes the timestamp
  // permutation, so every run slides the same batches.
  dppr::DatasetSpec spec;
  (void)dppr::FindDataset("pokec", &spec);
  auto edges = dppr::GenerateDataset(spec, /*scale_shift=*/1);
  dppr::EdgeStream stream =
      dppr::EdgeStream::RandomPermutation(std::move(edges), seed);
  dppr::SlidingWindow window(&stream, 0.1);
  const std::vector<dppr::Edge> initial = window.InitialEdges();
  const dppr::VertexId num_vertices = stream.NumVertices();
  dppr::DynamicGraph graph =
      dppr::DynamicGraph::FromEdges(initial, num_vertices);

  // Hubs = the highest-out-degree vertices (the HubPPR recipe). The next
  // vertex in that ranking is the "rising hub" promoted mid-run.
  std::vector<dppr::VertexId> ranked =
      dppr::TopOutDegreeVertices(graph, num_hubs + 1);
  const dppr::VertexId rising_hub = ranked.back();
  std::vector<dppr::VertexId> hubs(ranked.begin(), ranked.end() - 1);

  // Pre-flight the whole stream before serving starts: a production feed
  // is untrusted, and validating against the live graph would race the
  // maintenance thread. Validation interleaves with a scratch graph.
  const dppr::EdgeCount batch_size = window.BatchForRatio(0.001);
  std::vector<dppr::UpdateBatch> batches;
  {
    dppr::DynamicGraph preflight = dppr::DynamicGraph::FromEdges(
        graph.ToEdgeList(), graph.NumVertices());
    for (int s = 0; s < slides && window.CanSlide(batch_size); ++s) {
      dppr::UpdateBatch batch = window.NextBatch(batch_size);
      if (auto st = dppr::ValidateBatch(preflight, batch); !st.ok()) {
        std::fprintf(stderr, "rejecting batch %d: %s\n", s,
                     st.ToString().c_str());
        continue;
      }
      for (const dppr::EdgeUpdate& update : batch) preflight.Apply(update);
      batches.push_back(std::move(batch));
    }
  }

  dppr::IndexOptions options;
  options.ppr.eps = 1e-7;
  options.max_materialized_sources = lru_cap;
  dppr::ServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.materialize_wait = std::chrono::milliseconds(500);

  // Stand up either serving stack behind the facade.
  std::unique_ptr<dppr::PprIndex> index;
  std::unique_ptr<dppr::PprService> service;
  std::unique_ptr<dppr::ShardedPprService> sharded;
  ServiceFacade facade;
  dppr::WallTimer init_timer;
  if (num_shards <= 1) {
    index = std::make_unique<dppr::PprIndex>(&graph, hubs, options);
    index->Initialize();
    service = std::make_unique<dppr::PprService>(index.get(),
                                                 service_options);
    service->Start();
    std::printf("hub index over %zu sources built in %.1f ms (|V|=%d, "
                "|E|=%lld, %zu materialized, %d pooled engines)\n\n",
                index->NumSources(), init_timer.Millis(),
                graph.NumVertices(),
                static_cast<long long>(graph.NumEdges()),
                index->NumMaterializedSources(), index->NumPooledEngines());
    facade = {
        [&](dppr::VertexId s, dppr::VertexId v) {
          return service->Query(s, v);
        },
        [&](dppr::VertexId s, int kk) { return service->TopK(s, kk); },
        [&](dppr::UpdateBatch b) {
          return service->ApplyUpdatesAsync(std::move(b)).get();
        },
        [&](dppr::VertexId s) { return service->AddSourceAsync(s).get(); },
        [&](dppr::VertexId s) {
          return service->RemoveSourceAsync(s).get();
        },
        [&] { return index->Sources(); },
        [&](dppr::VertexId s) { return index->HasSource(s); },
        [&] { return service->Metrics(); },
    };
  } else {
    dppr::ShardedServiceOptions sharded_options;
    sharded_options.num_shards = num_shards;
    sharded_options.index = options;
    sharded_options.service = service_options;
    sharded = std::make_unique<dppr::ShardedPprService>(
        initial, num_vertices, hubs, sharded_options);
    sharded->Start();
    std::printf("sharded hub index over %zu sources across %zu shards "
                "built in %.1f ms (|V|=%d)\n",
                sharded->NumSources(), sharded->NumShards(),
                init_timer.Millis(), num_vertices);
    for (int shard_id : sharded->ShardIds()) {
      std::printf("  shard %d owns %zu hubs\n", shard_id,
                  sharded->SourcesOnShard(shard_id).size());
    }
    std::printf("\n");
    facade = {
        [&](dppr::VertexId s, dppr::VertexId v) {
          return sharded->Query(s, v);
        },
        [&](dppr::VertexId s, int kk) { return sharded->TopK(s, kk); },
        [&](dppr::UpdateBatch b) {
          return sharded->ApplyUpdates(std::move(b));
        },
        [&](dppr::VertexId s) { return sharded->AddSource(s); },
        [&](dppr::VertexId s) { return sharded->RemoveSource(s); },
        [&] { return sharded->Sources(); },
        [&](dppr::VertexId s) { return sharded->HasSource(s); },
        [&] { return sharded->Metrics(); },
    };
  }

  // Clients: closed-loop point + top-k queries over the hub set while the
  // stream applies. Sanity-checked on the fly: a hub's own estimate can
  // never drop below alpha - eps.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad_responses{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      int64_t i = c;
      while (!stop.load(std::memory_order_acquire)) {
        const dppr::VertexId hub =
            hubs[static_cast<size_t>(i) % hubs.size()];
        dppr::QueryResponse response =
            i % 3 == 0 ? facade.topk(hub, k) : facade.query(hub, hub);
        if (response.status == dppr::RequestStatus::kOk && i % 3 != 0 &&
            response.estimate.value <
                options.ppr.alpha - 2 * options.ppr.eps) {
          bad_responses.fetch_add(1);
        }
        ++i;
      }
    });
  }

  // Feeder: the maintenance stream, plus a hub-set change mid-run —
  // promote the rising hub, retire the coldest original one — and, in
  // sharded mode, a topology change: grow the fleet by one shard.
  for (size_t b = 0; b < batches.size(); ++b) {
    dppr::MaintResponse applied = facade.apply(batches[b]);
    if (applied.status != dppr::RequestStatus::kOk) {
      std::fprintf(stderr, "batch %zu not applied: %s\n", b,
                   dppr::RequestStatusName(applied.status));
    }
    if (b == batches.size() / 2) {
      (void)facade.add_source(rising_hub);
      (void)facade.remove_source(hubs.back());
      std::printf("mid-run hub churn: +%d (rising), -%d (retired)\n",
                  rising_hub, hubs.back());
      if (sharded != nullptr) {
        const int grown = sharded->AddShard();
        const dppr::RouterReport report = sharded->Report();
        std::printf("mid-run shard growth: +shard %d (%lld sources "
                    "migrated, %lld blob bytes)\n",
                    grown,
                    static_cast<long long>(report.sources_migrated),
                    static_cast<long long>(report.migration_bytes));
      }
      std::printf("\n");
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  // Serve one certified top-k per current hub through the service — the
  // same snapshot path the client threads used.
  dppr::TablePrinter table(
      {"hub", "epoch", "top-1", "score",
       "certified_of_top" + std::to_string(k)});
  for (dppr::VertexId hub : facade.sources()) {
    dppr::QueryResponse top = facade.topk(hub, k);
    if (top.status != dppr::RequestStatus::kOk) {
      std::fprintf(stderr, "top-k for hub %d: %s\n", hub,
                   dppr::RequestStatusName(top.status));
      continue;
    }
    table.AddRow({dppr::TablePrinter::FmtInt(hub),
                  dppr::TablePrinter::FmtInt(
                      static_cast<int64_t>(top.epoch)),
                  dppr::TablePrinter::FmtInt(top.topk.entries[0].id),
                  dppr::TablePrinter::FmtSci(top.topk.entries[0].score, 3),
                  dppr::TablePrinter::FmtInt(top.topk.certain_members)});
  }
  table.Print();

  if (sharded != nullptr) {
    // The scatter-gather view: the globally best (hub, vertex) scores.
    const dppr::GlobalTopKResult global = sharded->GlobalTopK(k);
    std::printf("\nglobal top-%d across all shards:", k);
    for (const dppr::GlobalTopKEntry& entry : global.entries) {
      std::printf(" %d->%d(%.2e)", entry.source, entry.entry.id,
                  entry.entry.score);
    }
    std::printf("\n");
    sharded->Stop();
  } else {
    service->Stop();
  }
  const dppr::MetricsReport report = facade.metrics();
  std::printf("\n%s\n", report.ToString().c_str());

  const bool hub_set_ok =
      facade.has_source(rising_hub) && !facade.has_source(hubs.back());
  std::printf("\nhub churn applied: %s; bad responses: %lld\n",
              hub_set_ok ? "yes" : "NO",
              static_cast<long long>(bad_responses.load()));
  return (hub_set_ok && bad_responses.load() == 0 &&
          report.queries_completed > 0)
             ? 0
             : 1;
}
