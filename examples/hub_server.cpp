// Hub index server — the end-to-end PprService demo: maintain PPR
// vectors for many hub vertices and serve certified top-k queries while
// the graph streams, the use-case the paper names in §6 ("our approach is
// helpful for [HubPPR, Guo et al.] to maintain the indexed PPR vectors on
// dynamic graphs").
//
//   ./hub_server [--hubs=8] [--workers=3] [--clients=2] [--slides=12]
//                [--k=5] [--seed=33] [--lru_cap=0]
//
// Unlike the PR-1 version (which called PprIndex directly from main),
// this is a real client of the serving layer: a PprService with a worker
// pool answers concurrent client threads from published snapshots while
// its maintenance thread applies the validated update stream, a hub is
// added and another retired mid-run, and the service metrics (p50/p99,
// shed counts, queries served during maintenance) are printed at the end.
// The stream permutation seed defaults to a fixed value so the printed
// tables are reproducible run-to-run; pass --seed to vary it.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_validation.h"
#include "gen/datasets.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "server/ppr_service.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/args.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto num_hubs = static_cast<dppr::VertexId>(args.GetInt("hubs", 8));
  const int workers = static_cast<int>(args.GetInt("workers", 3));
  const int num_clients = static_cast<int>(args.GetInt("clients", 2));
  const int slides = static_cast<int>(args.GetInt("slides", 12));
  const int k = static_cast<int>(args.GetInt("k", 5));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 33));
  const auto lru_cap = static_cast<size_t>(args.GetInt("lru_cap", 0));

  // Stream a pokec-like graph. The deterministic seed fixes the timestamp
  // permutation, so every run slides the same batches.
  dppr::DatasetSpec spec;
  (void)dppr::FindDataset("pokec", &spec);
  auto edges = dppr::GenerateDataset(spec, /*scale_shift=*/1);
  dppr::EdgeStream stream =
      dppr::EdgeStream::RandomPermutation(std::move(edges), seed);
  dppr::SlidingWindow window(&stream, 0.1);
  dppr::DynamicGraph graph = dppr::DynamicGraph::FromEdges(
      window.InitialEdges(), stream.NumVertices());

  // Hubs = the highest-out-degree vertices (the HubPPR recipe). The next
  // vertex in that ranking is the "rising hub" promoted mid-run.
  std::vector<dppr::VertexId> ranked =
      dppr::TopOutDegreeVertices(graph, num_hubs + 1);
  const dppr::VertexId rising_hub = ranked.back();
  std::vector<dppr::VertexId> hubs(ranked.begin(), ranked.end() - 1);

  // Pre-flight the whole stream before serving starts: a production feed
  // is untrusted, and validating against the live graph would race the
  // maintenance thread. Validation interleaves with a scratch graph.
  const dppr::EdgeCount batch_size = window.BatchForRatio(0.001);
  std::vector<dppr::UpdateBatch> batches;
  {
    dppr::DynamicGraph preflight = dppr::DynamicGraph::FromEdges(
        graph.ToEdgeList(), graph.NumVertices());
    for (int s = 0; s < slides && window.CanSlide(batch_size); ++s) {
      dppr::UpdateBatch batch = window.NextBatch(batch_size);
      if (auto st = dppr::ValidateBatch(preflight, batch); !st.ok()) {
        std::fprintf(stderr, "rejecting batch %d: %s\n", s,
                     st.ToString().c_str());
        continue;
      }
      for (const dppr::EdgeUpdate& update : batch) preflight.Apply(update);
      batches.push_back(std::move(batch));
    }
  }

  dppr::IndexOptions options;
  options.ppr.eps = 1e-7;
  options.max_materialized_sources = lru_cap;
  dppr::PprIndex index(&graph, hubs, options);
  dppr::WallTimer init_timer;
  index.Initialize();
  std::printf("hub index over %zu sources built in %.1f ms (|V|=%d, "
              "|E|=%lld, %zu materialized, %d pooled engines)\n\n",
              index.NumSources(), init_timer.Millis(), graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()),
              index.NumMaterializedSources(), index.NumPooledEngines());

  dppr::ServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.materialize_wait = std::chrono::milliseconds(500);
  dppr::PprService service(&index, service_options);
  service.Start();

  // Clients: closed-loop point + top-k queries over the hub set while the
  // stream applies. Sanity-checked on the fly: a hub's own estimate can
  // never drop below alpha - eps.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad_responses{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      int64_t i = c;
      while (!stop.load(std::memory_order_acquire)) {
        const dppr::VertexId hub =
            hubs[static_cast<size_t>(i) % hubs.size()];
        dppr::QueryResponse response =
            i % 3 == 0 ? service.TopK(hub, k) : service.Query(hub, hub);
        if (response.status == dppr::RequestStatus::kOk && i % 3 != 0 &&
            response.estimate.value <
                options.ppr.alpha - 2 * options.ppr.eps) {
          bad_responses.fetch_add(1);
        }
        ++i;
      }
    });
  }

  // Feeder: the maintenance stream, plus a hub-set change mid-run —
  // promote the rising hub, retire the coldest original one.
  for (size_t b = 0; b < batches.size(); ++b) {
    dppr::MaintResponse applied =
        service.ApplyUpdatesAsync(batches[b]).get();
    if (applied.status != dppr::RequestStatus::kOk) {
      std::fprintf(stderr, "batch %zu not applied: %s\n", b,
                   dppr::RequestStatusName(applied.status));
    }
    if (b == batches.size() / 2) {
      (void)service.AddSourceAsync(rising_hub).get();
      (void)service.RemoveSourceAsync(hubs.back()).get();
      std::printf("mid-run hub churn: +%d (rising), -%d (retired)\n\n",
                  rising_hub, hubs.back());
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  // Serve one certified top-k per current hub through the service — the
  // same snapshot path the client threads used.
  dppr::TablePrinter table(
      {"hub", "epoch", "top-1", "score",
       "certified_of_top" + std::to_string(k)});
  for (dppr::VertexId hub : index.Sources()) {
    dppr::QueryResponse top = service.TopK(hub, k);
    if (top.status != dppr::RequestStatus::kOk) {
      std::fprintf(stderr, "top-k for hub %d: %s\n", hub,
                   dppr::RequestStatusName(top.status));
      continue;
    }
    table.AddRow({dppr::TablePrinter::FmtInt(hub),
                  dppr::TablePrinter::FmtInt(
                      static_cast<int64_t>(top.epoch)),
                  dppr::TablePrinter::FmtInt(top.topk.entries[0].id),
                  dppr::TablePrinter::FmtSci(top.topk.entries[0].score, 3),
                  dppr::TablePrinter::FmtInt(top.topk.certain_members)});
  }
  table.Print();

  service.Stop();
  const dppr::MetricsReport report = service.Metrics();
  std::printf("\n%s\n", report.ToString().c_str());

  const bool hub_set_ok =
      index.HasSource(rising_hub) && !index.HasSource(hubs.back());
  std::printf("\nhub churn applied: %s; bad responses: %lld\n",
              hub_set_ok ? "yes" : "NO",
              static_cast<long long>(bad_responses.load()));
  return (hub_set_ok && bad_responses.load() == 0 &&
          report.queries_completed > 0)
             ? 0
             : 1;
}
