// "Who to follow (back)": streaming social recommendations from dynamic
// PPR.
//
//   ./who_to_follow [--users=4096] [--slides=20] [--k=5]
//
// The paper motivates dynamic PPR with exactly this workload (Twitter's
// WTF service [19], user recommendation [8]). The maintained vector is
// the contribution PPR w.r.t. a user U: p[w] is the probability that a
// random follow-walk starting at w ends at U — i.e., how strongly w's
// attention flows toward U. Ranking by p[w] surfaces the accounts most
// engaged with U that U does not follow yet: follow-back / engagement
// recommendations. The follow graph churns under a sliding window and
// the vector is maintained incrementally through every batch.

#include <cstdio>

#include "analysis/topk.h"
#include "core/dynamic_ppr.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/args.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto users = static_cast<dppr::VertexId>(args.GetInt("users", 4096));
  const int slides = static_cast<int>(args.GetInt("slides", 20));
  const int k = static_cast<int>(args.GetInt("k", 5));

  // Follow graph: preferential attachment grows celebrities organically.
  auto follows = dppr::GeneratePreferentialAttachment(users, 8, 99);
  dppr::EdgeStream stream = dppr::EdgeStream::RandomPermutation(follows, 1);
  dppr::SlidingWindow window(&stream, 0.3);
  dppr::DynamicGraph graph =
      dppr::DynamicGraph::FromEdges(window.InitialEdges(), users);

  // Recommend for a followed account: contribution mass flows along
  // follow edges, so an account with real in-traffic has signal (a cold
  // account has none — true in production systems too).
  dppr::VertexId user = 0;
  for (dppr::VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (graph.InDegree(v) > graph.InDegree(user)) user = v;
  }

  dppr::PprOptions options;
  options.eps = 1e-7;
  options.variant = dppr::PushVariant::kOpt;
  dppr::DynamicPpr ppr(&graph, user, options);
  ppr.Initialize();

  std::printf("user %d: %d followees, %d followers (|V|=%d, |E|=%lld)\n",
              user, graph.OutDegree(user), graph.InDegree(user),
              graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()));

  dppr::Histogram latency;
  const dppr::EdgeCount batch_size = window.BatchForRatio(0.01);
  for (int slide = 0; slide < slides && window.CanSlide(batch_size);
       ++slide) {
    ppr.ApplyBatch(window.NextBatch(batch_size));
    latency.Add(ppr.last_stats().TotalSeconds() * 1e3);

    if (slide % 5 == 4 || slide == 0) {
      // Exclude the user and everyone they already follow.
      std::vector<int32_t> exclude = {user};
      for (dppr::VertexId f : graph.OutNeighbors(user)) exclude.push_back(f);
      auto recs = dppr::TopKExcluding(ppr.Estimates(), k, exclude);
      std::printf("\nafter slide %d (%lld updates applied):\n", slide + 1,
                  static_cast<long long>(2 * batch_size * (slide + 1)));
      dppr::TablePrinter table({"follow-back", "engagement (ppr)"});
      for (const auto& rec : recs) {
        table.AddRow({dppr::TablePrinter::FmtInt(rec.id),
                      dppr::TablePrinter::FmtSci(rec.score, 3)});
      }
      table.Print();
    }
  }
  std::printf("\nmaintenance latency per batch of %lld updates: %s\n",
              static_cast<long long>(2 * batch_size),
              latency.Summary("ms").c_str());
  return 0;
}
