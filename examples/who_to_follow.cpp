// "Who to follow (back)": streaming social recommendations from dynamic
// PPR.
//
//   ./who_to_follow [--users=4096] [--accounts=4] [--slides=20] [--k=5]
//
// The paper motivates dynamic PPR with exactly this workload (Twitter's
// WTF service [19], user recommendation [8]). Each maintained vector is
// the contribution PPR w.r.t. an account U: p[w] is the probability that
// a random follow-walk starting at w ends at U — i.e., how strongly w's
// attention flows toward U. Ranking by p[w] surfaces the accounts most
// engaged with U that U does not follow yet: follow-back / engagement
// recommendations. A real service answers this for MANY accounts at once,
// so the example maintains a PprIndex over the top in-traffic accounts —
// one shared follow graph, pooled push engines, every vector kept fresh
// through each sliding-window batch — and serves recommendations from the
// published snapshots, the same lock-free path a query thread would use
// while maintenance runs.

#include <cstdio>

#include "analysis/topk.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_stats.h"
#include "index/ppr_index.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "util/args.h"
#include "util/histogram.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto users = static_cast<dppr::VertexId>(args.GetInt("users", 4096));
  const auto accounts =
      static_cast<size_t>(args.GetInt("accounts", 4));
  const int slides = static_cast<int>(args.GetInt("slides", 20));
  const int k = static_cast<int>(args.GetInt("k", 5));

  // Follow graph: preferential attachment grows celebrities organically.
  auto follows = dppr::GeneratePreferentialAttachment(users, 8, 99);
  dppr::EdgeStream stream = dppr::EdgeStream::RandomPermutation(follows, 1);
  dppr::SlidingWindow window(&stream, 0.3);
  dppr::DynamicGraph graph =
      dppr::DynamicGraph::FromEdges(window.InitialEdges(), users);

  // Recommend for the accounts with the most follower traffic:
  // contribution mass flows along follow edges, so accounts with real
  // in-traffic have signal (a cold account has none — true in production
  // systems too).
  std::vector<dppr::VertexId> by_in_degree = dppr::TopInDegreeVertices(
      graph, static_cast<dppr::VertexId>(accounts));

  dppr::IndexOptions options;
  options.ppr.eps = 1e-7;
  options.ppr.variant = dppr::PushVariant::kOpt;
  dppr::PprIndex index(&graph, by_in_degree, options);
  index.Initialize();

  for (size_t a = 0; a < index.NumSources(); ++a) {
    const dppr::VertexId user = index.SourceVertex(a);
    std::printf("account %d: %d followees, %d followers\n", user,
                graph.OutDegree(user), graph.InDegree(user));
  }
  std::printf("(|V|=%d, |E|=%lld, %zu vectors, %d pooled engines)\n",
              graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()), index.NumSources(),
              index.NumPooledEngines());

  dppr::Histogram latency;
  const dppr::EdgeCount batch_size = window.BatchForRatio(0.01);
  for (int slide = 0; slide < slides && window.CanSlide(batch_size);
       ++slide) {
    index.ApplyBatch(window.NextBatch(batch_size));
    latency.Add(index.LastBatchSeconds() * 1e3);

    if (slide % 5 == 4 || slide == 0) {
      std::printf("\nafter slide %d (%lld updates applied):\n", slide + 1,
                  static_cast<long long>(2 * batch_size * (slide + 1)));
      dppr::TablePrinter table(
          {"account", "follow-back", "engagement (ppr)"});
      for (size_t a = 0; a < index.NumSources(); ++a) {
        const dppr::VertexId user = index.SourceVertex(a);
        // Exclude the account and everyone it already follows; read from
        // the published snapshot, not the writer-side state.
        std::vector<int32_t> exclude = {user};
        for (dppr::VertexId f : graph.OutNeighbors(user)) {
          exclude.push_back(f);
        }
        auto snapshot = index.Snapshot(a);
        auto recs = dppr::TopKExcluding(snapshot->estimates, k, exclude);
        for (const auto& rec : recs) {
          table.AddRow({dppr::TablePrinter::FmtInt(user),
                        dppr::TablePrinter::FmtInt(rec.id),
                        dppr::TablePrinter::FmtSci(rec.score, 3)});
        }
      }
      table.Print();
    }
  }
  std::printf("\nmaintenance latency per batch of %lld updates across %zu "
              "vectors: %s\n",
              static_cast<long long>(2 * batch_size), index.NumSources(),
              latency.Summary("ms").c_str());
  return 0;
}
