// Local community detection on an evolving graph (PPR + sweep cut).
//
//   ./community_detection [--cluster=128] [--noise=0.02]
//
// PPR powers local graph clustering (Andersen-Chung-Lang; one of the
// applications in the paper's introduction). This example plants two
// communities connected by a few bridges, finds the seed's community with
// a degree-normalized sweep over the maintained PPR vector, then rewires
// edges so the seed MIGRATES to the other community — and shows the
// incrementally maintained vector tracking the move.

#include <algorithm>
#include <cstdio>

#include "analysis/sweep_cut.h"
#include "core/dynamic_ppr.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "util/args.h"
#include "util/random.h"

namespace {

// Counts how many community members fall inside [lo, hi).
int64_t CountInRange(const std::vector<dppr::VertexId>& community,
                     dppr::VertexId lo, dppr::VertexId hi) {
  int64_t count = 0;
  for (dppr::VertexId v : community) count += (v >= lo && v < hi);
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  dppr::ArgParser args;
  if (auto st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto cluster =
      static_cast<dppr::VertexId>(args.GetInt("cluster", 128));
  const double noise = args.GetDouble("noise", 0.02);
  const dppr::VertexId n = 2 * cluster;

  // Planted partition: two dense symmetric communities + sparse bridges.
  dppr::Rng rng(3);
  dppr::DynamicGraph graph(n);
  auto add_undirected = [&graph](dppr::VertexId a, dppr::VertexId b) {
    graph.AddEdge(a, b);
    graph.AddEdge(b, a);
  };
  for (dppr::VertexId block = 0; block < 2; ++block) {
    const dppr::VertexId base = block * cluster;
    for (dppr::VertexId i = 0; i < cluster; ++i) {
      for (int e = 0; e < 6; ++e) {
        const auto j = static_cast<dppr::VertexId>(
            rng.NextBounded(static_cast<uint64_t>(cluster)));
        if (i != j) add_undirected(base + i, base + j);
      }
    }
  }
  const auto bridges = std::max<int64_t>(
      1, static_cast<int64_t>(noise * static_cast<double>(cluster)));
  for (int64_t b = 0; b < bridges; ++b) {
    add_undirected(
        static_cast<dppr::VertexId>(rng.NextBounded(cluster)),
        static_cast<dppr::VertexId>(cluster + rng.NextBounded(cluster)));
  }

  const dppr::VertexId seed = 0;
  dppr::PprOptions options;
  options.alpha = 0.15;
  options.eps = 1e-6;
  dppr::DynamicPpr ppr(&graph, seed, options);
  ppr.Initialize();

  auto report = [&](const char* phase) {
    dppr::SweepCutResult cut = dppr::SweepCut(*ppr.graph(), ppr.Estimates());
    const int64_t in_a = CountInRange(cut.community, 0, cluster);
    const int64_t in_b = CountInRange(cut.community, cluster, n);
    std::printf(
        "%-22s community size=%4zu  conductance=%.4f  members: %lld in A, "
        "%lld in B\n",
        phase, cut.community.size(), cut.conductance,
        static_cast<long long>(in_a), static_cast<long long>(in_b));
  };
  std::printf("seed vertex %d starts in community A [0, %d)\n\n", seed,
              cluster);
  report("initial sweep:");

  // Rewire: detach the seed from A, wire it into B. Batches flow through
  // ApplyBatch, so the PPR vector is maintained incrementally.
  dppr::UpdateBatch batch;
  auto out = ppr.graph()->OutNeighbors(seed);
  std::vector<dppr::VertexId> old_nbrs(out.begin(), out.end());
  for (dppr::VertexId v : old_nbrs) {
    batch.push_back(dppr::EdgeUpdate::Delete(seed, v));
    batch.push_back(dppr::EdgeUpdate::Delete(v, seed));
  }
  for (int e = 0; e < 8; ++e) {
    const auto target = static_cast<dppr::VertexId>(
        cluster + rng.NextBounded(static_cast<uint64_t>(cluster)));
    batch.push_back(dppr::EdgeUpdate::Insert(seed, target));
    batch.push_back(dppr::EdgeUpdate::Insert(target, seed));
  }
  ppr.ApplyBatch(batch);
  std::printf("\nrewired seed into community B (%zu updates, %.2f ms)\n\n",
              batch.size(), ppr.last_stats().TotalSeconds() * 1e3);
  report("after migration:");

  // The seed's strongest PPR mass should now sit in B.
  dppr::SweepCutResult final_cut =
      dppr::SweepCut(*ppr.graph(), ppr.Estimates());
  const bool migrated =
      CountInRange(final_cut.community, cluster, n) >
      CountInRange(final_cut.community, 0, cluster);
  std::printf("\nseed community %s to B\n",
              migrated ? "migrated" : "did NOT migrate");
  return migrated ? 0 : 1;
}
